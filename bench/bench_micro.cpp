// Microbenchmarks (google-benchmark): garbling primitives and protocol
// throughput. These are our own instrumentation, not a paper table: the
// paper's metric is communication, but local compute must stay linear
// (SkipGate's complexity argument, §3.4).
//
// The AES benchmarks are parameterized by backend (0 = portable tables,
// 1 = AES-NI) and by batching (scalar vs hash4/encrypt_batch), so one run
// shows the full speedup ladder recorded in BENCH_micro.json. AES-NI rows
// silently measure the portable fallback on CPUs without the extension —
// check the reported labels.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "arm/arm2gc.h"
#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "crypto/aes128.h"
#include "crypto/prf.h"
#include "gc/garble.h"
#include "programs/programs.h"

using namespace arm2gc;

namespace {

crypto::Aes128::Backend backend_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? crypto::Aes128::Backend::Portable
                             : crypto::Aes128::Backend::AesNi;
}

void set_backend_label(benchmark::State& state, bool uses_aesni) {
  state.SetLabel(uses_aesni ? "aesni" : "portable");
}

void set_scheme_label(benchmark::State& state, gc::Scheme scheme) {
  switch (scheme) {
    case gc::Scheme::HalfGates: state.SetLabel("halfgates"); break;
    case gc::Scheme::Grr3: state.SetLabel("grr3"); break;
    case gc::Scheme::Classic4: state.SetLabel("classic4"); break;
  }
}

}  // namespace

static void BM_Aes128Encrypt(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::block_from_u64(1), backend_arg(state));
  crypto::Block x = crypto::block_from_u64(2);
  for (auto _ : state) {
    x = aes.encrypt(x);
    benchmark::DoNotOptimize(x);
  }
  set_backend_label(state, aes.uses_aesni());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Aes128Encrypt)->Arg(0)->Arg(1);

static void BM_Aes128EncryptBatch8(benchmark::State& state) {
  const crypto::Aes128 aes(crypto::block_from_u64(1), backend_arg(state));
  crypto::Block x[8];
  for (int i = 0; i < 8; ++i) x[i] = crypto::block_from_u64(static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    aes.encrypt_batch(x, 8);
    benchmark::DoNotOptimize(x[7]);
  }
  set_backend_label(state, aes.uses_aesni());
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Aes128EncryptBatch8)->Arg(0)->Arg(1);

static void BM_PiHash(benchmark::State& state) {
  const crypto::PiHash h(backend_arg(state));
  crypto::Block x = crypto::block_from_u64(3);
  std::uint64_t t = 0;
  for (auto _ : state) {
    x = h(x, t++);
    benchmark::DoNotOptimize(x);
  }
  set_backend_label(state, h.uses_aesni());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiHash)->Arg(0)->Arg(1);

static void BM_PiHash4(benchmark::State& state) {
  const crypto::PiHash h(backend_arg(state));
  crypto::Block x[4];
  for (int i = 0; i < 4; ++i) x[i] = crypto::block_from_u64(static_cast<std::uint64_t>(i + 4));
  std::uint64_t t = 0;
  std::uint64_t tw[4];
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) tw[i] = t++;
    h.hash4(x, tw, x);
    benchmark::DoNotOptimize(x[3]);
  }
  set_backend_label(state, h.uses_aesni());
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PiHash4)->Arg(0)->Arg(1);

/// Garbled AND gates per second, per scheme (runtime-dispatched backend).
static void BM_Garble(benchmark::State& state) {
  const auto scheme = static_cast<gc::Scheme>(state.range(0));
  gc::Garbler g(crypto::block_from_u64(4), scheme);
  const crypto::Block a0 = g.fresh_label();
  const crypto::Block b0 = g.fresh_label();
  const netlist::AndCore core = netlist::tt_and_core(netlist::kTtAnd);
  for (auto _ : state) {
    gc::GarbledTable t;
    benchmark::DoNotOptimize(g.garble(a0, b0, core, t));
  }
  set_scheme_label(state, scheme);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Garble)->Arg(0)->Arg(1)->Arg(2);

/// Evaluated AND gates per second, per scheme.
static void BM_Eval(benchmark::State& state) {
  const auto scheme = static_cast<gc::Scheme>(state.range(0));
  gc::Garbler g(crypto::block_from_u64(5), scheme);
  const crypto::Block a0 = g.fresh_label();
  const crypto::Block b0 = g.fresh_label();
  gc::GarbledTable t;
  const crypto::Block w0 = g.garble(a0, b0, netlist::tt_and_core(netlist::kTtAnd), t);
  benchmark::DoNotOptimize(w0);
  // One long-lived evaluator: past the first iteration the tweak sequence no
  // longer matches the table, but the per-gate hash work — what this bench
  // measures — is identical, and rebuilding an evaluator per iteration would
  // measure the AES key schedule instead.
  gc::Evaluator ev(scheme);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.eval(a0, b0, t));
  }
  set_scheme_label(state, scheme);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Eval)->Arg(0)->Arg(1)->Arg(2);

/// End-to-end protocol throughput on a 32x32 multiplier, per mode.
static void BM_ProtocolMul32(benchmark::State& state) {
  builder::CircuitBuilder cb;
  const builder::Bus a = cb.input_bus(netlist::Owner::Alice, 32, 0);
  const builder::Bus b = cb.input_bus(netlist::Owner::Bob, 32, 0);
  cb.output_bus(builder::mul_lower(cb, a, b, 32));
  const netlist::Netlist nl = cb.take();
  netlist::BitVec av(32, true), bv(32, false);
  core::RunOptions opts;
  opts.mode = state.range(0) == 0 ? core::Mode::SkipGate : core::Mode::Conventional;
  opts.fixed_cycles = 1;
  for (auto _ : state) {
    core::SkipGateDriver driver(nl, opts);
    benchmark::DoNotOptimize(driver.run(av, bv));
  }
  state.SetLabel(state.range(0) == 0 ? "skipgate" : "conventional");
}
BENCHMARK(BM_ProtocolMul32)->Arg(0)->Arg(1);

namespace {

/// Full ARM2GC protocol run (SkipGate, halt-driven), parameterized by plan
/// cache (arg0), transport (arg1) and cone memoization (arg2) — the
/// per-cycle plan cache skips classification on revisited public control
/// states, the cone memo re-classifies only dirty cones on cache-missed
/// cycles, and the threaded pipe overlaps garbling with evaluation.
/// Labels: "cache=0/1 pipe=0/1 cone=0/1".
void protocol_arm(benchmark::State& state, const programs::Program& prog,
                  std::vector<std::uint32_t> a, std::vector<std::uint32_t> b) {
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.plan_cache = state.range(0) != 0;
  exec.transport = state.range(1) != 0 ? core::TransportKind::ThreadedPipe
                                       : core::TransportKind::InMemory;
  exec.cone_memo = state.range(2) != 0;
  std::uint64_t cycles = 0;
  double hit_ratio = 0.0;
  double cone_ratio = 0.0;
  for (auto _ : state) {
    const arm::Arm2GcResult r = machine.run(a, b, 1u << 20, gc::Scheme::HalfGates, exec);
    benchmark::DoNotOptimize(r.outputs.data());
    cycles = r.cycles;
    hit_ratio = r.stats.plan_cache_hit_ratio();
    cone_ratio = r.stats.cone_hit_ratio();
  }
  state.SetLabel(std::string("cache=") + (state.range(0) ? "1" : "0") +
                 " pipe=" + (state.range(1) ? "1" : "0") +
                 " cone=" + (state.range(2) ? "1" : "0"));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cycles));
  state.counters["cycles"] = static_cast<double>(cycles);
  state.counters["cache_hit_ratio"] = hit_ratio;
  state.counters["cone_hit_ratio"] = cone_ratio;
}

}  // namespace

static void BM_ProtocolArmSum32(benchmark::State& state) {
  protocol_arm(state, programs::sum(1), {0xDEADBEEFu}, {0x12345679u});
}
BENCHMARK(BM_ProtocolArmSum32)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 0, 1})
    ->Args({0, 1, 0})
    ->Args({1, 1, 1})
    ->Unit(benchmark::kMillisecond);

static void BM_ProtocolArmHamming160(benchmark::State& state) {
  protocol_arm(state, programs::hamming(5), {1, 2, 3, 4, 5}, {6, 7, 8, 9, 10});
}
BENCHMARK(BM_ProtocolArmHamming160)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 0, 1})
    ->Args({0, 1, 0})
    ->Args({1, 1, 1})
    ->Unit(benchmark::kMillisecond);

/// The serving scenario: one Arm2Gc::Session executes the same public
/// program on fresh private inputs every iteration, so the per-party plan
/// caches stay warm and every run after the first skips classification.
/// arg0: transport (0 = in-memory, 1 = threaded pipe).
static void BM_ProtocolArmSessionHamming160(benchmark::State& state) {
  const programs::Program prog = programs::hamming(5);
  const arm::Arm2Gc machine(prog.cfg, prog.words);
  core::ExecOptions exec;
  exec.transport = state.range(0) != 0 ? core::TransportKind::ThreadedPipe
                                       : core::TransportKind::InMemory;
  arm::Arm2Gc::Session session(machine, exec);
  std::vector<std::uint32_t> a = {1, 2, 3, 4, 5};
  const std::vector<std::uint32_t> b = {6, 7, 8, 9, 10};
  double hit_ratio = 0.0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    a[0]++;  // fresh private input each run; the public trajectory repeats
    const arm::Arm2GcResult r = session.run(a, b);
    benchmark::DoNotOptimize(r.outputs.data());
    hit_ratio = r.stats.plan_cache_hit_ratio();
    cycles = r.cycles;
  }
  state.SetLabel(state.range(0) ? "session pipe=1" : "session pipe=0");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cycles));
  state.counters["cache_hit_ratio"] = hit_ratio;
}
BENCHMARK(BM_ProtocolArmSessionHamming160)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
