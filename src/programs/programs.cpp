#include "programs/programs.h"

#include <cmath>
#include <sstream>

namespace arm2gc::programs {

namespace {

using arm::MemoryConfig;

std::size_t pow2_at_least(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

Program finish(std::string name, std::string source, MemoryConfig cfg) {
  Program p;
  p.name = std::move(name);
  p.source = std::move(source);
  p.words = arm::assemble(p.source);
  cfg.imem_words = pow2_at_least(std::max<std::size_t>(p.words.size(), 16));
  p.cfg = cfg;
  return p;
}

MemoryConfig io_cfg(std::size_t alice_w, std::size_t bob_w, std::size_t out_w,
                    std::size_t ram_w = 16) {
  MemoryConfig cfg;
  cfg.alice_words = pow2_at_least(std::max<std::size_t>(alice_w, 1));
  cfg.bob_words = pow2_at_least(std::max<std::size_t>(bob_w, 1));
  cfg.out_words = pow2_at_least(std::max<std::size_t>(out_w, 1));
  cfg.ram_words = pow2_at_least(std::max<std::size_t>(ram_w, 16));
  return cfg;
}

/// Copies combined[i] = alice[i] ^ bob[i] into RAM at 0x40000 (clobbers
/// r0/r1 as running pointers; all control is public).
void emit_gather_shares(std::ostringstream& s, std::size_t n) {
  s << "ldr r5, =0x40000\n"
    << "mov r4, #0\n"
    << "Lcopy:\n"
    << "ldr r6, [r0]\n"
    << "ldr r7, [r1]\n"
    << "eor r6, r6, r7\n"
    << "str r6, [r5]\n"
    << "add r0, r0, #4\n"
    << "add r1, r1, #4\n"
    << "add r5, r5, #4\n"
    << "add r4, r4, #1\n"
    << "cmp r4, #" << n << "\n"
    << "bne Lcopy\n";
}

/// Copies n words from the address in r8 to the output memory.
void emit_copy_out_from_r8(std::ostringstream& s, std::size_t n, const char* label) {
  s << "mov r4, #0\n"
    << label << ":\n"
    << "ldr r6, [r8]\n"
    << "str r6, [r2]\n"
    << "add r8, r8, #4\n"
    << "add r2, r2, #4\n"
    << "add r4, r4, #1\n"
    << "cmp r4, #" << n << "\n"
    << "bne " << label << "\n";
}

}  // namespace

Program sum(std::size_t nwords) {
  std::ostringstream s;
  s << "; multi-word addition: out = a + b (" << nwords << " words)\n";
  for (std::size_t w = 0; w < nwords; ++w) {
    s << "ldr r4, [r0, #" << 4 * w << "]\n";
    s << "ldr r5, [r1, #" << 4 * w << "]\n";
    const bool last = w + 1 == nwords;
    // First word: ADDS starts the carry chain; the last word needs no flags.
    const char* op = w == 0 ? (last ? "add" : "adds") : (last ? "adc" : "adcs");
    s << op << " r6, r4, r5\n";
    s << "str r6, [r2, #" << 4 * w << "]\n";
  }
  s << "swi 0\n";
  return finish("Sum " + std::to_string(32 * nwords), s.str(), io_cfg(nwords, nwords, nwords));
}

Program compare(std::size_t nwords) {
  std::ostringstream s;
  s << "; unsigned multi-word compare: out[0] = (a < b)\n";
  for (std::size_t w = 0; w < nwords; ++w) {
    s << "ldr r4, [r0, #" << 4 * w << "]\n";
    s << "ldr r5, [r1, #" << 4 * w << "]\n";
    s << (w == 0 ? "subs" : "sbcs") << " r6, r4, r5\n";
  }
  // a < b  <=>  final borrow (C clear). SBC of a register with itself
  // materializes ~C as a full-width mask at zero garbling cost (the adder
  // degenerates to category-iii gates).
  s << "sbc r6, r6, r6\n"
    << "and r6, r6, #1\n"
    << "str r6, [r2]\n"
    << "swi 0\n";
  return finish("Compare " + std::to_string(32 * nwords), s.str(), io_cfg(nwords, nwords, 1));
}

Program hamming(std::size_t nwords) {
  std::ostringstream s;
  s << "; Hamming distance via SWAR popcount (masked adds)\n"
    << "ldr r10, =0x55555555\n"
    << "ldr r11, =0x33333333\n"
    << "ldr r12, =0x0F0F0F0F\n"
    << "ldr r9, =0x00FF00FF\n"
    << "mov r8, #0\n";  // accumulator
  for (std::size_t w = 0; w < nwords; ++w) {
    s << "ldr r4, [r0, #" << 4 * w << "]\n"
      << "ldr r5, [r1, #" << 4 * w << "]\n"
      << "eor r4, r4, r5\n"
      // Mask-first adds: the masked positions are public zeros, so each add
      // garbles only the live field bits (SkipGate category ii).
      << "and r5, r4, r10\n"
      << "and r4, r10, r4, lsr #1\n"
      << "add r4, r4, r5\n"
      << "and r5, r4, r11\n"
      << "and r4, r11, r4, lsr #2\n"
      << "add r4, r4, r5\n"
      << "and r5, r4, r12\n"
      << "and r4, r12, r4, lsr #4\n"
      << "add r4, r4, r5\n"
      << "and r5, r4, r9\n"
      << "and r4, r9, r4, lsr #8\n"
      << "add r4, r4, r5\n"
      << "add r4, r4, r4, lsr #16\n"
      << "and r4, r4, #63\n"
      << "add r8, r8, r4\n";
  }
  s << "str r8, [r2]\n"
    << "swi 0\n"
    << ".ltorg\n";
  return finish("Hamming " + std::to_string(32 * nwords), s.str(), io_cfg(nwords, nwords, 1));
}

Program mult32() {
  const std::string s =
      "ldr r4, [r0]\n"
      "ldr r5, [r1]\n"
      "mul r6, r4, r5\n"
      "str r6, [r2]\n"
      "swi 0\n";
  return finish("Mult 32", s, io_cfg(1, 1, 1));
}

Program matmult(std::size_t n) {
  std::ostringstream s;
  const std::size_t row_bytes = 4 * n;
  s << "; C = A x B, " << n << "x" << n << " 32-bit, sequential MACs\n"
    << "mov r10, r0\n"   // A row base
    << "mov r3, r2\n"    // out pointer
    << "mov r4, #0\n"    // i
    << "Li:\n"
    << "mov r5, #0\n"    // j
    << "Lj:\n"
    << "mov r8, r10\n"   // pa
    << "add r9, r1, r5, lsl #2\n"  // pb = B + 4*j
    << "mov r7, #0\n"    // acc
    << "mov r6, #0\n"    // k
    << "Lk:\n"
    << "ldr r11, [r8]\n"
    << "ldr r12, [r9]\n"
    << "mla r7, r11, r12, r7\n"
    << "add r8, r8, #4\n"
    << "add r9, r9, #" << row_bytes << "\n"
    << "add r6, r6, #1\n"
    << "cmp r6, #" << n << "\n"
    << "bne Lk\n"
    << "str r7, [r3]\n"
    << "add r3, r3, #4\n"
    << "add r5, r5, #1\n"
    << "cmp r5, #" << n << "\n"
    << "bne Lj\n"
    << "add r10, r10, #" << row_bytes << "\n"
    << "add r4, r4, #1\n"
    << "cmp r4, #" << n << "\n"
    << "bne Li\n"
    << "swi 0\n";
  return finish("MatrixMult" + std::to_string(n) + "x" + std::to_string(n) + " 32", s.str(),
                io_cfg(n * n, n * n, n * n));
}

Program bubble_sort(std::size_t n) {
  std::ostringstream s;
  s << "; bubble sort of " << n << " XOR-shared words (ascending)\n";
  emit_gather_shares(s, n);
  s << "mov r4, #" << (n - 1) << "\n"  // comparisons this pass
    << "Louter:\n"
    << "ldr r8, =0x40000\n"
    << "mov r5, #0\n"
    << "Linner:\n"
    << "ldr r6, [r8]\n"
    << "ldr r7, [r8, #4]\n"
    // Swap when the right element is smaller: predicated stores, no branch
    // (the paper's conditional-execution pattern, §4.2).
    << "cmp r7, r6\n"
    << "strlo r7, [r8]\n"
    << "strlo r6, [r8, #4]\n"
    << "add r8, r8, #4\n"
    << "add r5, r5, #1\n"
    << "cmp r5, r4\n"
    << "bne Linner\n"
    << "subs r4, r4, #1\n"
    << "bne Louter\n"
    << "ldr r8, =0x40000\n";
  emit_copy_out_from_r8(s, n, "Lout");
  s << "swi 0\n"
    << ".ltorg\n";
  return finish("Bubble-Sort" + std::to_string(n) + " 32", s.str(), io_cfg(n, n, n, 2 * n));
}

Program merge_sort(std::size_t n) {
  // Bottom-up merge sort over two RAM buffers (src at +0, dst at +4n),
  // ping-ponging each pass. The merge is oblivious: every block runs exactly
  // 2w steps; the read pointers i/j are *byte offsets* advanced by predicated
  // masks and re-masked with AND #imm each step so their secrecy never
  // reaches the address region bits (which would make the whole memory scan
  // — or worse, the fetch — secret).
  if (n < 2 || (n & (n - 1)) != 0) throw std::invalid_argument("merge_sort: n must be 2^k");
  const std::size_t total_bytes = 4 * n;
  const std::size_t off_mask = 2 * total_bytes - 1;  // covers both buffers
  std::ostringstream s;
  s << "; bottom-up merge sort of " << n << " XOR-shared words\n";
  emit_gather_shares(s, n);
  s << "ldr r0, =0x40000\n"                       // src buffer (r0/r1 reused)
    << "ldr r1, =" << (0x40000 + total_bytes) << "\n"  // dst buffer
    << "mov r3, #4\n"                             // run width in bytes
    << "Lpass:\n"
    << "mov r4, #0\n"                             // block start offset (public)
    << "mov r9, r1\n"                             // dst pointer (public)
    << "Lblock:\n"
    << "mov r5, r4\n"                             // i offset (becomes secret)
    << "add r6, r4, r3\n"                         // j offset
    << "add r7, r4, r3\n"                         // endi
    << "add r8, r7, r3\n"                         // endj
    << "Lstep:\n"
    << "add lr, r0, r5\n"
    << "ldr r10, [lr]\n"                          // src[i] (secret index)
    << "add lr, r0, r6\n"
    << "ldr r11, [lr]\n"                          // src[j]
    // take_i = (i < endi) && !((j < endj) && (src[j] < src[i])); the SBC
    // self-subtractions materialize the comparison masks for free.
    << "cmp r11, r10\n"
    << "sbc r12, r12, r12\n"                      // src[j] < src[i]
    << "cmp r6, r8\n"
    << "sbc lr, lr, lr\n"                         // j < endj
    << "and r12, r12, lr\n"
    << "cmp r5, r7\n"
    << "sbc lr, lr, lr\n"                         // i < endi
    << "bic r12, lr, r12\n"                       // take_i mask
    // value select + store (dst pointer is public).
    << "eor lr, r10, r11\n"
    << "and lr, lr, r12\n"
    << "eor lr, r11, lr\n"
    << "str lr, [r9]\n"
    << "add r9, r9, #4\n"
    // advance i by 4 if taken else j by 4; re-mask offsets to keep the
    // secret bits bounded below the region field.
    << "and lr, r12, #4\n"
    << "add r5, r5, lr\n"
    << "and r5, r5, #" << off_mask << "\n"
    << "eor lr, lr, #4\n"
    << "add r6, r6, lr\n"
    << "and r6, r6, #" << off_mask << "\n"
    // block/pass bookkeeping (public).
    << "add lr, r4, r3, lsl #1\n"                 // block end offset
    << "sub r12, r9, r1\n"                        // produced bytes
    << "cmp r12, lr\n"
    << "bne Lstep\n"
    << "mov r4, lr\n"                             // next block start
    << "cmp r4, #" << total_bytes << "\n"
    << "bne Lblock\n"
    // swap buffers, double the width.
    << "mov lr, r0\n"
    << "mov r0, r1\n"
    << "mov r1, lr\n"
    << "mov r3, r3, lsl #1\n"
    << "cmp r3, #" << total_bytes << "\n"
    << "bne Lpass\n"
    << "mov r8, r0\n";  // final pass output lives in the current src
  emit_copy_out_from_r8(s, n, "Lout");
  s << "swi 0\n"
    << ".ltorg\n";
  return finish("Merge-Sort" + std::to_string(n) + " 32", s.str(), io_cfg(n, n, n, 2 * n));
}

Program dijkstra8() {
  constexpr std::size_t kN = 8;
  constexpr std::uint32_t kRam = 0x40000;       // dist[8]
  constexpr std::uint32_t kAdj = kRam + 4 * 8;  // adj[64] row-major
  std::ostringstream p;
  p << "; Dijkstra, complete 8-node digraph, 64 XOR-shared weights\n"
    << "ldr r5, =" << kRam << "\n"
    << "mov r6, #0\n"
    << "str r6, [r5]\n"
    << "ldr r7, =0x0FF00000\n";  // INF
  for (std::size_t j = 1; j < kN; ++j) p << "str r7, [r5, #" << 4 * j << "]\n";
  p << "ldr r5, =" << kAdj << "\n"
    << "mov r4, #0\n"
    << "Lgather:\n"
    << "ldr r6, [r0]\n"
    << "ldr r7, [r1]\n"
    << "eor r6, r6, r7\n"
    << "str r6, [r5]\n"
    << "add r0, r0, #4\n"
    << "add r1, r1, #4\n"
    << "add r5, r5, #4\n"
    << "add r4, r4, #1\n"
    << "cmp r4, #64\n"
    << "bne Lgather\n"
    << "mov r11, #0\n"   // visited mask (secret after round 1)
    << "mov r10, #0\n"   // iteration counter (public)
    << "Liter:\n"
    << "ldr r7, =0x0FF00004\n"   // bestd sentinel (> INF)
    << "mov r8, #0\n"            // bestu
    << "mov r5, #0\n"            // candidate j (public)
    << "ldr r3, =" << kRam << "\n"
    << "Lmin:\n"
    << "ldr r6, [r3]\n"          // dist[j] (public address)
    // unvisited = ~(visited >> j) & 1; shift amount j is public -> free.
    << "mvn r12, r11\n"
    << "mov r12, r12, lsr r5\n"
    << "and r12, r12, #1\n"
    << "rsb r12, r12, #0\n"      // unvisited mask
    << "cmp r6, r7\n"
    << "sbc lr, lr, lr\n"        // dist[j] < bestd
    << "and r12, r12, lr\n"      // update mask
    << "eor lr, r6, r7\n"
    << "and lr, lr, r12\n"
    << "eor r7, r7, lr\n"        // bestd
    << "eor lr, r5, r8\n"
    << "and lr, lr, r12\n"
    << "eor r8, r8, lr\n"        // bestu
    << "add r3, r3, #4\n"
    << "add r5, r5, #1\n"
    << "cmp r5, #8\n"
    << "bne Lmin\n"
    // visited |= 1 << bestu (secret shift amount).
    << "mov r12, #1\n"
    << "orr r11, r11, r12, lsl r8\n"
    // relax: nd = bestd + adj[bestu][j]; dist[j] = min(dist[j], nd).
    << "ldr r4, =" << kAdj << "\n"
    << "add r4, r4, r8, lsl #5\n"  // secret row base (contained in low bits)
    << "ldr r3, =" << kRam << "\n"
    << "mov r5, #0\n"
    << "Lrelax:\n"
    << "ldr r6, [r4]\n"            // w (secret row, public column)
    << "add r6, r6, r7\n"          // nd
    << "ldr r9, [r3]\n"            // dist[j]
    << "cmp r6, r9\n"
    << "strlo r6, [r3]\n"
    << "add r4, r4, #4\n"
    << "add r3, r3, #4\n"
    << "add r5, r5, #1\n"
    << "cmp r5, #8\n"
    << "bne Lrelax\n"
    << "add r10, r10, #1\n"
    << "cmp r10, #8\n"
    << "bne Liter\n"
    << "ldr r8, =" << kRam << "\n";
  emit_copy_out_from_r8(p, kN, "Lout");
  p << "swi 0\n"
    << ".ltorg\n";
  return finish("Dijkstra64 32", p.str(), io_cfg(64, 64, 8, 128));
}

namespace {
std::int32_t atan_table_entry(int i) {
  return static_cast<std::int32_t>(std::lround(std::atan(std::ldexp(1.0, -i)) * (1 << 30)));
}
}  // namespace

void cordic_reference(std::int32_t& x, std::int32_t& y, std::int32_t z) {
  for (int i = 0; i < 32; ++i) {
    const std::int32_t xs = x >> i;
    const std::int32_t ys = y >> i;
    const std::int32_t a = atan_table_entry(i);
    if (z >= 0) {
      const std::int32_t nx = x - ys;
      y = y + xs;
      x = nx;
      z = z - a;
    } else {
      const std::int32_t nx = x + ys;
      y = y - xs;
      x = nx;
      z = z + a;
    }
  }
}

Program cordic32() {
  std::ostringstream s;
  s << "; CORDIC rotation mode, 32 iterations, 2.30 fixed point\n"
    << "ldr r4, [r0]\n"
    << "ldr r5, [r1]\n"
    << "eor r4, r4, r5\n"   // x
    << "ldr r5, [r0, #4]\n"
    << "ldr r6, [r1, #4]\n"
    << "eor r5, r5, r6\n"   // y
    << "ldr r6, [r0, #8]\n"
    << "ldr r7, [r1, #8]\n"
    << "eor r6, r6, r7\n"   // z (angle)
    << "ldr r8, =Atan\n"    // table pointer (public, in instruction memory)
    << "mov r7, #0\n"       // i (public)
    << "Liter:\n"
    << "ldr r9, [r8]\n"          // atan[i] (public)
    << "mov r10, r4, asr r7\n"   // x >> i (public shift amount)
    << "mov r11, r5, asr r7\n"   // y >> i
    << "mov r12, r6, asr #31\n"  // m = z < 0 ? -1 : 0 (free)
    << "mvn r3, r12\n"           // ~m
    << "eor r11, r11, r3\n"      // (y>>i) ^ ~m
    << "eor r10, r10, r12\n"     // (x>>i) ^ m
    << "eor r9, r9, r3\n"        // atan ^ ~m
    // Carry tricks: ADDS of a register with itself exposes its sign bit as C
    // at zero cost (category-iii adder), turning conditional add/subtract
    // into a single ADC each.
    << "adds r3, r3, r3\n"       // C = (z >= 0)
    << "adc r4, r4, r11\n"       // x' = x -/+ (y>>i)
    << "adc r6, r6, r9\n"        // z' = z -/+ atan
    << "adds r12, r12, r12\n"    // C = (z < 0)
    << "adc r5, r5, r10\n"       // y' = y +/- (x>>i)
    << "add r8, r8, #4\n"
    << "add r7, r7, #1\n"
    << "cmp r7, #32\n"
    << "bne Liter\n"
    << "str r4, [r2]\n"
    << "str r5, [r2, #4]\n"
    << "swi 0\n"
    << "Atan:\n";
  for (int i = 0; i < 32; ++i) {
    s << ".word " << static_cast<std::uint32_t>(atan_table_entry(i)) << "\n";
  }
  s << ".ltorg\n";
  return finish("CORDIC 32", s.str(), io_cfg(3, 3, 2));
}

}  // namespace arm2gc::programs
