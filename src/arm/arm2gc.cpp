#include "arm/arm2gc.h"

#include <stdexcept>
#include <string>

namespace arm2gc::arm {

Arm2Gc::Arm2Gc(MemoryConfig cfg, std::vector<std::uint32_t> program)
    : cfg_(cfg), program_(std::move(program)), cpu_(build_cpu(cfg_, program_)) {}

netlist::BitVec Arm2Gc::words_to_bits(std::span<const std::uint32_t> words,
                                      std::size_t mem_words, const char* who) const {
  if (words.size() > mem_words) {
    throw std::invalid_argument(std::string("Arm2Gc: ") + who + " input exceeds memory");
  }
  netlist::BitVec bits(32 * mem_words, false);
  for (std::size_t w = 0; w < words.size(); ++w) {
    for (int b = 0; b < 32; ++b) bits[32 * w + static_cast<std::size_t>(b)] = ((words[w] >> b) & 1u) != 0;
  }
  return bits;
}

namespace {
Arm2GcResult decode_run(const core::RunResult& r, std::size_t out_words) {
  Arm2GcResult res;
  res.cycles = r.final_cycle + 1;
  res.stats = r.stats;
  res.outputs.assign(out_words, 0);
  // Output port 0 is the halt flag; out memory bits follow word-major.
  for (std::size_t w = 0; w < out_words; ++w) {
    for (int b = 0; b < 32; ++b) {
      if (r.final_outputs.at(1 + 32 * w + static_cast<std::size_t>(b))) {
        res.outputs[w] |= 1u << b;
      }
    }
  }
  return res;
}
}  // namespace

Arm2GcResult Arm2Gc::run(std::span<const std::uint32_t> alice,
                         std::span<const std::uint32_t> bob, std::uint64_t max_cycles,
                         gc::Scheme scheme, const core::ExecOptions& exec) const {
  core::RunOptions opts;
  opts.mode = core::Mode::SkipGate;
  opts.scheme = scheme;
  opts.halt_wire = cpu_.halt_wire;
  opts.max_cycles = max_cycles;
  opts.exec = exec;
  core::SkipGateDriver driver(cpu_.nl, opts);
  const core::RunResult r = driver.run(words_to_bits(alice, cfg_.alice_words, "Alice"),
                                       words_to_bits(bob, cfg_.bob_words, "Bob"));
  return decode_run(r, cfg_.out_words);
}

Arm2GcResult Arm2Gc::run_conventional(std::span<const std::uint32_t> alice,
                                      std::span<const std::uint32_t> bob, std::uint64_t cycles,
                                      const core::ExecOptions& exec) const {
  core::RunOptions opts;
  opts.mode = core::Mode::Conventional;
  opts.fixed_cycles = cycles;
  opts.exec = exec;
  core::SkipGateDriver driver(cpu_.nl, opts);
  const core::RunResult r = driver.run(words_to_bits(alice, cfg_.alice_words, "Alice"),
                                       words_to_bits(bob, cfg_.bob_words, "Bob"));
  return decode_run(r, cfg_.out_words);
}

std::uint64_t Arm2Gc::conventional_non_xor(std::uint64_t cycles) const {
  return cycles * cpu_.nl.count_non_free();
}

Arm2Gc::Session::Session(const Arm2Gc& machine, core::ExecOptions exec)
    : machine_(&machine),
      exec_(exec),
      garbler_cache_(exec.plan_cache_budget_bytes),
      evaluator_cache_(exec.plan_cache_budget_bytes),
      garbler_cones_(exec.cone_memo_budget_bytes),
      evaluator_cones_(exec.cone_memo_budget_bytes),
      // OT states derive from the same protocol seed every run() hands the
      // driver (RunOptions default; Arm2Gc::run never overrides it), so the
      // warm extension streams continue exactly where the last run stopped.
      ot_sender_(core::RunOptions{}.seed),
      ot_receiver_(core::RunOptions{}.seed) {
  exec_.plan_cache = true;  // warm caches are the point of a session
  if (exec_.garbler_plan_cache == nullptr) exec_.garbler_plan_cache = &garbler_cache_;
  if (exec_.evaluator_plan_cache == nullptr) exec_.evaluator_plan_cache = &evaluator_cache_;
  if (exec_.cone_memo) {
    if (exec_.garbler_cone_memo == nullptr) exec_.garbler_cone_memo = &garbler_cones_;
    if (exec_.evaluator_cone_memo == nullptr) exec_.evaluator_cone_memo = &evaluator_cones_;
  }
  if (exec_.ot_backend == gc::OtBackend::Iknp) {
    if (exec_.ot_sender_state == nullptr) exec_.ot_sender_state = &ot_sender_;
    if (exec_.ot_receiver_state == nullptr) exec_.ot_receiver_state = &ot_receiver_;
  }
}

Arm2GcResult Arm2Gc::Session::run(std::span<const std::uint32_t> alice,
                                  std::span<const std::uint32_t> bob, std::uint64_t max_cycles,
                                  gc::Scheme scheme) {
  return machine_->run(alice, bob, max_cycles, scheme, exec_);
}

Arm2GcResult Arm2Gc::run_reference(std::span<const std::uint32_t> alice,
                                   std::span<const std::uint32_t> bob,
                                   std::uint64_t max_cycles) const {
  ArmSim sim(cfg_, program_);
  sim.reset(alice, bob);
  Arm2GcResult res;
  res.cycles = sim.run(max_cycles);
  res.outputs = sim.out_mem();
  return res;
}

}  // namespace arm2gc::arm
