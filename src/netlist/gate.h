// Two-input Boolean gates represented by 4-bit truth tables, plus the
// truth-table algebra SkipGate relies on (restriction by a public input,
// restriction to the diagonal for identical/inverted secret inputs, and the
// AND-core decomposition used by half-gates garbling).
#pragma once

#include <cstdint>

namespace arm2gc::netlist {

/// Truth table bit layout: output for inputs (a,b) lives at bit ((b<<1)|a).
using TruthTable = std::uint8_t;

inline constexpr TruthTable kTtZero = 0b0000;
inline constexpr TruthTable kTtAnd = 0b1000;
inline constexpr TruthTable kTtAndANotB = 0b0010;  // a & ~b
inline constexpr TruthTable kTtA = 0b1010;
inline constexpr TruthTable kTtNotAAndB = 0b0100;  // ~a & b
inline constexpr TruthTable kTtB = 0b1100;
inline constexpr TruthTable kTtXor = 0b0110;
inline constexpr TruthTable kTtOr = 0b1110;
inline constexpr TruthTable kTtNor = 0b0001;
inline constexpr TruthTable kTtXnor = 0b1001;
inline constexpr TruthTable kTtNotB = 0b0011;
inline constexpr TruthTable kTtOrANotB = 0b1011;  // a | ~b
inline constexpr TruthTable kTtNotA = 0b0101;
inline constexpr TruthTable kTtOrNotAB = 0b1101;  // ~a | b
inline constexpr TruthTable kTtNand = 0b0111;
inline constexpr TruthTable kTtOne = 0b1111;

constexpr bool tt_eval(TruthTable tt, bool a, bool b) {
  const int idx = (static_cast<int>(b) << 1) | static_cast<int>(a);
  return ((tt >> idx) & 1) != 0;
}

/// Truth table with input a negated: bit (b,a) <- bit (b, ~a).
constexpr TruthTable tt_neg_a(TruthTable tt) {
  return static_cast<TruthTable>(((tt & 0b0101) << 1) | ((tt & 0b1010) >> 1));
}
/// Truth table with input b negated: bit (b,a) <- bit (~b, a).
constexpr TruthTable tt_neg_b(TruthTable tt) {
  return static_cast<TruthTable>(((tt & 0b0011) << 2) | ((tt & 0b1100) >> 2));
}
/// Truth table with inputs swapped.
constexpr TruthTable tt_swap(TruthTable tt) {
  return static_cast<TruthTable>((tt & 0b1001) | ((tt & 0b0010) << 1) | ((tt & 0b0100) >> 1));
}

/// True iff the table ignores input a (depends only on b).
constexpr bool tt_ignores_a(TruthTable tt) { return tt_neg_a(tt) == tt; }
/// True iff the table ignores input b (depends only on a).
constexpr bool tt_ignores_b(TruthTable tt) { return tt_neg_b(tt) == tt; }

/// A gate is "free" under free-XOR iff its truth table is affine over GF(2):
/// f(a,b) = c ^ d*a ^ e*b. Exactly the tables whose four entries XOR to 0 and
/// that have no AND term; for 2 inputs this is the parity test below.
constexpr bool tt_is_affine(TruthTable tt) {
  const int f00 = (tt >> 0) & 1;
  const int f10 = (tt >> 1) & 1;
  const int f01 = (tt >> 2) & 1;
  const int f11 = (tt >> 3) & 1;
  return ((f00 ^ f10 ^ f01 ^ f11) & 1) == 0;
}

/// Unary function on one remaining input: output for v lives at bit v.
/// 00=const0, 11=const1, 10=identity, 01=negation.
using UnaryTable = std::uint8_t;

inline constexpr UnaryTable kUnZero = 0b00;
inline constexpr UnaryTable kUnId = 0b10;
inline constexpr UnaryTable kUnNot = 0b01;
inline constexpr UnaryTable kUnOne = 0b11;

/// Restrict `tt` by fixing input a to the public value `va`; the result is a
/// unary function of b. (SkipGate category ii.)
constexpr UnaryTable tt_restrict_a(TruthTable tt, bool va) {
  const int lo = (tt >> (0 | static_cast<int>(va))) & 1;         // b = 0
  const int hi = (tt >> (2 | static_cast<int>(va))) & 1;         // b = 1
  return static_cast<UnaryTable>((hi << 1) | lo);
}

/// Restrict `tt` by fixing input b to the public value `vb`; unary in a.
constexpr UnaryTable tt_restrict_b(TruthTable tt, bool vb) {
  const int base = static_cast<int>(vb) << 1;
  const int lo = (tt >> (base | 0)) & 1;                          // a = 0
  const int hi = (tt >> (base | 1)) & 1;                          // a = 1
  return static_cast<UnaryTable>((hi << 1) | lo);
}

/// Restrict `tt` to the diagonal b = a ^ diff, for secret inputs that carry
/// the same label up to inversion. (SkipGate category iii.)
constexpr UnaryTable tt_restrict_diag(TruthTable tt, bool diff) {
  const bool lo = tt_eval(tt, false, diff);        // a = 0
  const bool hi = tt_eval(tt, true, !diff);        // a = 1, b = 1 ^ diff
  return static_cast<UnaryTable>((static_cast<int>(hi) << 1) | static_cast<int>(lo));
}

constexpr bool unary_eval(UnaryTable u, bool v) { return ((u >> static_cast<int>(v)) & 1) != 0; }
constexpr bool unary_is_const(UnaryTable u) { return u == kUnZero || u == kUnOne; }

/// Decomposition of a non-affine table as gamma ^ ((a^alpha) & (b^beta)).
/// Every non-affine 2-input function has exactly one such decomposition,
/// which lets half-gates garble it at AND cost with polarity adjustments.
struct AndCore {
  bool alpha = false;
  bool beta = false;
  bool gamma = false;
};

constexpr AndCore tt_and_core(TruthTable tt) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int g = 0; g < 2; ++g) {
        bool ok = true;
        for (int va = 0; va < 2 && ok; ++va) {
          for (int vb = 0; vb < 2 && ok; ++vb) {
            const bool want = tt_eval(tt, va != 0, vb != 0);
            const bool got = (g != 0) ^ (((va ^ a) & (vb ^ b)) != 0);
            ok = want == got;
          }
        }
        if (ok) return AndCore{a != 0, b != 0, g != 0};
      }
    }
  }
  // Unreachable for non-affine tables; affine tables must not be passed here.
  return AndCore{};
}

}  // namespace arm2gc::netlist
