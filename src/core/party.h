// Party-separated endpoint API: one protocol execution of ONE role over any
// gc::Transport. This is the layer a deployment links against — a garbler
// service holds GarblerEndpoints, an evaluator client holds
// EvaluatorEndpoints, and nothing in either binary ever constructs the peer's
// secret state (EMP-toolkit's party-indexed NetIO endpoints are the shape
// being followed). The in-process SkipGateDriver (core/skipgate.h) is a thin
// composition of the two endpoints over an in-memory duplex and is pinned
// byte-identical to a two-process run over a socket.
//
// Each endpoint owns exactly its role's state:
//   - its own Planner (deterministic public bookkeeping; both parties run
//     one independently from the shared `protocol_seed`, and the CyclePlan
//     each derives is the entire inter-party contract),
//   - its role's label session (GarblerSession / EvaluatorSession) seeded
//     from the party's own `private_seed`,
//   - its half of the OT state (sender / receiver endpoint).
// Cross-run state (plan cache, cone memo, warm IKNP extension state) lives
// in a role-scoped WarmState handle the caller owns; an endpoint is
// otherwise a single-execution object.
//
// Seeding: `protocol_seed` is public and must match the peer (fingerprint
// streams are part of the plan contract). `private_seed` is this party's own
// randomness — labels and the free-XOR offset R for the garbler, OT receiver
// randomness for the evaluator. It defaults to the protocol seed so
// in-process runs stay byte-reproducible; a deployment (tools/arm2gc_party)
// seeds it privately per process, which closes the determinism-over-secrecy
// gap noted in gc/otext.h for everything above the base OTs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/plan.h"
#include "crypto/block.h"
#include "gc/garble.h"
#include "gc/otext.h"
#include "gc/transport.h"
#include "netlist/netlist.h"

namespace arm2gc::core {

class GarblerSession;
class EvaluatorSession;
class WorkPool;

/// The default public protocol seed (fingerprint streams + in-process
/// private randomness when no party-specific seed is supplied).
inline constexpr crypto::Block kDefaultProtocolSeed{0x4152433247430100ULL,
                                                    0x736b697067617465ULL};

enum class Role : std::uint8_t { Garbler, Evaluator };

[[nodiscard]] constexpr const char* role_name(Role r) {
  return r == Role::Garbler ? "garbler" : "evaluator";
}

struct RunStats {
  std::uint64_t cycles = 0;
  /// Worker threads this endpoint ran with (1 = serial; parallelism never
  /// changes any other field of this struct — pinned by parallel_test).
  std::uint64_t threads = 1;
  /// Garbled tables actually transferred: the paper's "# of Garbled Non-XOR".
  std::uint64_t garbled_non_xor = 0;
  /// Non-affine gate slots (gate x cycle) that were *not* garbled.
  std::uint64_t skipped_non_xor = 0;
  /// Non-affine gate slots encountered = count_non_free() x cycles; equals
  /// the conventional-GC cost of the same run.
  std::uint64_t non_xor_slots = 0;
  /// Cycles whose classification was served from the plan cache / computed.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Cone-granular memo counters: segments adopted from / classified into
  /// the cone memo on cycles the whole-netlist plan cache missed. A cone hit
  /// is work the flat cache could not save (similar-but-not-identical entry
  /// states, e.g. ARM loop iterations differing only in a public counter).
  std::uint64_t cone_hits = 0;
  std::uint64_t cone_misses = 0;
  /// Peak undelivered transport backlog, in 16-byte blocks (in-process
  /// duplexes only; a socket endpoint reports 0).
  std::uint64_t transport_high_water_blocks = 0;
  /// OT subsystem counters. In a single-endpoint run they come from this
  /// role's OT endpoint (the two sides' ledgers are identical by
  /// construction); the in-process lock-step driver reports the garbler's
  /// counts with both roles' ot_wall_ns summed, the threaded driver reports
  /// the garbler's alone.
  std::uint64_t ot_choices = 0;
  std::uint64_t ot_batches = 0;
  std::uint64_t ot_base_ots = 0;  ///< base OTs run this execution (0 when warm)
  /// Online/offline OT split: ot_wall_ns and ot_online_bytes cover the
  /// per-batch critical path (for Ideal/Iknp that is every OT byte);
  /// ot_offline_wall_ns is pool precomputation/refill time, nonzero only
  /// under OtBackend::Precomp.
  std::uint64_t ot_wall_ns = 0;
  std::uint64_t ot_offline_wall_ns = 0;
  std::uint64_t ot_online_bytes = 0;
  /// Running gf_double-mix digest of every garbled-table block this party
  /// sent (garbler) or received (evaluator) — gc/golden_digest.h
  /// construction. The two sides fold the same byte stream, so the digests
  /// are equal on a correct run: it pins table content — not just byte
  /// counts — across transports, plan caching, OT backends and processes.
  crypto::Block table_digest{};
  gc::CommStats comm;

  /// Fraction of non-XOR slots SkipGate elided (0 when nothing ran).
  [[nodiscard]] double skip_ratio() const {
    return non_xor_slots == 0
               ? 0.0
               : static_cast<double>(skipped_non_xor) / static_cast<double>(non_xor_slots);
  }
  /// Fraction of cycles served from the plan cache.
  [[nodiscard]] double plan_cache_hit_ratio() const {
    const std::uint64_t total = plan_cache_hits + plan_cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(plan_cache_hits) / static_cast<double>(total);
  }
  /// Fraction of cache-missed cycles' cones stitched from the cone memo.
  [[nodiscard]] double cone_hit_ratio() const {
    const std::uint64_t total = cone_hits + cone_misses;
    return total == 0 ? 0.0 : static_cast<double>(cone_hits) / static_cast<double>(total);
  }
};

/// Per-cycle bit provider for streamed inputs (bit-serial circuits). Index i
/// must cover every Input with streamed=true and bit_index==i of that owner.
/// When the two endpoints run on different threads (threaded pipe) or in
/// different processes, the callbacks are invoked from each party's own
/// context (pub from both; alice from the garbler, bob from the evaluator)
/// and must be pure functions of the cycle index.
struct StreamProvider {
  std::function<netlist::BitVec(std::uint64_t cycle)> alice;
  std::function<netlist::BitVec(std::uint64_t cycle)> bob;
  std::function<netlist::BitVec(std::uint64_t cycle)> pub;
};

struct RunResult {
  /// Outputs of every sampled cycle (every cycle if outputs_every_cycle,
  /// otherwise just the final one). Only the garbler decodes outputs; an
  /// evaluator endpoint's run leaves this empty (it contributes labels).
  std::vector<netlist::BitVec> sampled_outputs;
  /// Convenience: the last sampled outputs.
  netlist::BitVec final_outputs;
  std::uint64_t final_cycle = 0;  ///< index of the last executed cycle
  RunStats stats;
};

/// Everything one endpoint needs to know to run its role. The protocol
/// fields (mode, scheme, cycle schedule, protocol_seed, ot_backend, plan
/// tuning that affects the layout key) must match the peer's; private_seed
/// and the cache budgets are the party's own business.
struct PartyOptions {
  Mode mode = Mode::SkipGate;
  gc::Scheme scheme = gc::Scheme::HalfGates;
  /// Run exactly this many cycles (sequential circuits with a known schedule).
  std::optional<std::uint64_t> fixed_cycles;
  /// Public wire that announces termination (the processor's halt signal);
  /// the cycle where it becomes 1 is the final cycle. Must be public. Both
  /// endpoints decide termination from their own planner — determinism keeps
  /// them agreed with no extra message.
  std::optional<netlist::WireId> halt_wire;
  /// Safety bound when running halt-driven.
  std::uint64_t max_cycles = 1u << 20;
  /// Public seed of the planner fingerprint streams; must equal the peer's.
  crypto::Block protocol_seed = kDefaultProtocolSeed;
  /// This party's own randomness (labels + R for the garbler, OT receiver
  /// randomness for the evaluator). Defaults to protocol_seed, which keeps
  /// in-process runs byte-reproducible; set it privately per process for a
  /// deployment.
  std::optional<crypto::Block> private_seed;
  /// Plan reuse tuning (results never depend on any of it).
  bool plan_cache = true;
  std::size_t plan_cache_budget_bytes = 64u << 20;
  bool cone_memo = true;
  std::size_t cone_memo_budget_bytes = 32u << 20;
  /// Segmentation granularity (gates per cone, approximate; 0 = whole
  /// netlist as one cone). Public; both parties must derive the same layout.
  std::size_t cone_target_gates = 512;
  /// OT backend for Bob's input labels (gc/otext.h); must match the peer.
  gc::OtBackend ot_backend = gc::OtBackend::Ideal;
  /// Precomp pool refill batch size (random OTs generated per refill). The
  /// refill schedule is derived deterministically from it, so it must match
  /// the peer; ignored by the other backends.
  std::size_t ot_pool = gc::kDefaultOtPoolBatch;
  /// Worker threads for garbling/evaluation and the planner's per-cone
  /// classification (0 = one per hardware thread). Purely local execution
  /// tuning: the framed byte stream, table digests, comm accounting and
  /// every RunStats counter are identical at any thread count, so the two
  /// parties need not agree on it.
  std::size_t threads = 1;

  [[nodiscard]] crypto::Block own_seed() const {
    return private_seed.value_or(protocol_seed);
  }
};

/// Role-scoped cross-run state: the plan cache, the cone memo and (under the
/// IKNP backend) this role's half of the warm OT-extension state. One
/// WarmState per party per long-lived pairing — Arm2Gc::Session owns one per
/// role; a serving deployment owns one per connected client. Endpoints
/// reference it for the duration of a run and reset the OT half on protocol
/// abort: an aborted run can leave the extension streams desynced from the
/// peer's (detected by the per-batch check block, never mis-delivered), so
/// dropping them back to the base phase makes the *next* run recover without
/// rebuilding caches. Not thread-safe; never share one across roles or
/// concurrent runs (endpoints reject a wrong-role WarmState).
class WarmState {
 public:
  struct Options {
    std::size_t plan_cache_budget_bytes = 64u << 20;
    std::size_t cone_memo_budget_bytes = 32u << 20;
    /// Iknp allocates the role's extension state; Precomp the role's
    /// random-OT pool (which embeds its own extension state); Ideal none.
    gc::OtBackend ot_backend = gc::OtBackend::Ideal;
    /// Precomp pool refill batch size; must equal PartyOptions::ot_pool.
    std::size_t ot_pool = gc::kDefaultOtPoolBatch;
    /// The party's private seed for the OT state (domain-separated inside).
    crypto::Block seed = kDefaultProtocolSeed;
  };

  explicit WarmState(Role role);  ///< default Options
  WarmState(Role role, const Options& opts);
  ~WarmState();

  [[nodiscard]] Role role() const { return role_; }
  [[nodiscard]] gc::OtBackend ot_backend() const { return opts_.ot_backend; }
  [[nodiscard]] std::size_t ot_pool() const { return opts_.ot_pool; }
  [[nodiscard]] const PlanCache& plan_cache() const { return plan_cache_; }
  [[nodiscard]] const ConeMemo& cone_memo() const { return cone_memo_; }
  [[nodiscard]] bool has_ot_state() const {
    return ot_sender_ != nullptr || ot_receiver_ != nullptr || otpre_sender_ != nullptr ||
           otpre_receiver_ != nullptr;
  }
  /// Precomp only: random OTs banked and not yet consumed (0 otherwise).
  [[nodiscard]] std::size_t ot_pool_available() const;

  /// Precomp only: true when the pool is below its low-water mark, i.e. the
  /// next ot_refill()/ot_refill_request() slot will actually exchange a
  /// refill batch rather than no-op. Both roles' pools track the same fill
  /// level by construction, so a scheduler can predict from its own side
  /// whether the maintenance slot touches the wire (the garbler service
  /// parks for the receiver-first refill frames only when this is set).
  [[nodiscard]] bool ot_refill_pending() const;

  /// Discards the warm OT-extension state (the next run redoes the kappa
  /// base OTs; plan caches are untouched). Called by endpoints on protocol
  /// abort; callable directly to force a re-base.
  void reset_ot();

  /// Lazily built worker pool shared by every run of this pairing (workers
  /// park between runs, so keeping it here saves the per-run thread spawn).
  /// Rebuilt if a run asks for a different thread count. Never call with
  /// threads == 0 — resolve via WorkPool::resolve_threads first.
  [[nodiscard]] WorkPool* pool(std::size_t threads);

 private:
  friend class GarblerEndpoint;
  friend class EvaluatorEndpoint;

  Role role_;
  Options opts_;
  PlanCache plan_cache_;
  ConeMemo cone_memo_;
  std::unique_ptr<gc::IknpSenderState> ot_sender_;        ///< Garbler, Iknp backend
  std::unique_ptr<gc::IknpReceiverState> ot_receiver_;    ///< Evaluator, Iknp backend
  std::unique_ptr<gc::RandomOtPoolSender> otpre_sender_;  ///< Garbler, Precomp backend
  std::unique_ptr<gc::RandomOtPoolReceiver> otpre_receiver_;  ///< Evaluator, Precomp
  std::unique_ptr<WorkPool> pool_;                            ///< built by pool()
};

// The two endpoints share one stepwise schedule; the hook split exists so
// the in-process lock-step driver can interleave the two roles on a single
// thread over a non-blocking duplex. Over a blocking transport (socket,
// threaded pipe) call run() and never touch the hooks. Cross-party ordering
// contract (what run() performs for one role, the lock-step driver for two):
//
//   E.start_request  ->  G.start  ->  E.start_finish
//   per cycle:
//     E.begin_request  ->  G.begin  ->  E.begin_finish
//     G.work  ->  E.work            (each returns is_final; they must agree)
//     E.sample  ->  G.sample
//     G.latch, E.latch              (order irrelevant)
//     E.ot_refill_request  ->  G.ot_refill  ->  E.ot_refill_finish
//   G.finish / E.finish
//
// The ot_refill_* hooks are the OT maintenance slot: under OtBackend::Precomp
// they top the random-OT pool back up (one bulk IKNP batch) whenever it falls
// below its low-water mark, so the precompute work runs between cycles — in
// the window where the evaluator otherwise idles waiting for the next
// cycle's tables — instead of stalling an online derandomization batch.
// No-ops under Ideal/Iknp. Both sides derive the refill decision from the
// shared pool fill level, so the hooks must stay in the schedule for every
// backend and transport (run() includes them).
//
// Any abort (exception out of a hook or out of run()) must be followed by
// abort(), which resets the warm OT state; run() does this itself.

/// Alice's endpoint: plans publicly, generates labels, garbles, serves OT
/// sends, decodes outputs.
class GarblerEndpoint {
 public:
  /// `warm` (optional) must be a Role::Garbler WarmState; its caches and OT
  /// state persist across endpoint instances. Throws std::invalid_argument
  /// on a wrong-role WarmState or inconsistent options.
  GarblerEndpoint(const netlist::Netlist& nl, const PartyOptions& opts, gc::Transport& tx,
                  WarmState* warm = nullptr);
  ~GarblerEndpoint();

  /// Runs the whole protocol over the transport (blocking). On any failure
  /// the warm OT state is reset before the exception propagates.
  [[nodiscard]] RunResult run(const netlist::BitVec& alice_bits,
                              const netlist::BitVec& pub_bits = {},
                              const StreamProvider* streams = nullptr);

  // Stepwise schedule hooks (see the ordering contract above).
  void start(const netlist::BitVec& alice_bits, const netlist::BitVec& pub_bits,
             const StreamProvider* streams);
  void begin(std::uint64_t cycle);
  [[nodiscard]] bool work(std::uint64_t cycle);  ///< plans + garbles; true = final cycle
  void sample();
  void latch();
  void ot_refill();  ///< OT maintenance slot (Precomp pool top-up; else no-op)
  [[nodiscard]] RunResult finish();
  /// Resets the warm OT state after a failed run (idempotent, noexcept).
  void abort() noexcept;

  /// The plan work() derived for the current cycle (valid until the next
  /// work()). A co-located follower endpoint reads it; see
  /// EvaluatorEndpoint's plan-following constructor.
  [[nodiscard]] const CyclePlan& plan() const { return plan_; }

 private:
  friend class EvaluatorEndpoint;  ///< plan-following mode reads the planner

  [[nodiscard]] bool decide_final(std::uint64_t cycle) const;

  const netlist::Netlist& nl_;
  PartyOptions opts_;
  bool halt_driven_;
  std::uint64_t cycle_count_;
  WarmState* warm_;
  gc::Transport* tx_;
  // Declared (and therefore initialized) before planner_/session_, which
  // borrow the raw pointer. Warm runs share the WarmState's pool; a cold
  // multi-thread run owns one; serial runs keep both null.
  std::unique_ptr<WorkPool> owned_pool_;
  WorkPool* pool_;
  Planner planner_;
  std::unique_ptr<GarblerSession> session_;
  const StreamProvider* streams_ = nullptr;
  netlist::BitVec alice_bits_;
  netlist::BitVec pub_bits_;
  CyclePlan plan_{};
  RunResult result_;
  RunStats stats_;
};

/// Bob's endpoint: plans publicly, requests OTs for his choice bits,
/// evaluates garbled tables, returns output labels for decoding.
class EvaluatorEndpoint {
 public:
  /// `warm` (optional) must be a Role::Evaluator WarmState.
  EvaluatorEndpoint(const netlist::Netlist& nl, const PartyOptions& opts, gc::Transport& tx,
                    WarmState* warm = nullptr);

  /// In-process plan-following fast path (the lock-step driver's
  /// composition): the endpoint owns NO planner and consumes the co-located
  /// `leader` garbler endpoint's plan each cycle instead of re-deriving it.
  /// The plan is public and both parties' planners provably derive the same
  /// one (plan_test pins it), so inside one address space — one trust
  /// domain — planning once is pure wall-clock savings with identical
  /// results. A *networked* evaluator must never follow: accepting the
  /// peer's plan would let a garbler unilaterally reclassify wires. The
  /// leader must outlive this endpoint and be driven in the shared-schedule
  /// order (leader.work before this->work each cycle).
  EvaluatorEndpoint(const netlist::Netlist& nl, const PartyOptions& opts, gc::Transport& tx,
                    WarmState* warm, const GarblerEndpoint& leader);
  ~EvaluatorEndpoint();

  /// Runs the whole protocol over the transport (blocking). The result's
  /// sampled_outputs stay empty (only the garbler decodes); stats carry this
  /// side's planner counters, OT ledger and received-table digest.
  [[nodiscard]] RunResult run(const netlist::BitVec& bob_bits,
                              const netlist::BitVec& pub_bits = {},
                              const StreamProvider* streams = nullptr);

  // Stepwise schedule hooks (see the ordering contract above). The
  // *_request halves emit the receiver-first OT messages and must run before
  // the garbler's matching phase under a lock-step schedule.
  void start_request(const netlist::BitVec& bob_bits, const netlist::BitVec& pub_bits,
                     const StreamProvider* streams);
  void start_finish();
  void begin_request(std::uint64_t cycle);
  void begin_finish();
  [[nodiscard]] bool work(std::uint64_t cycle);  ///< plans + evaluates; true = final cycle
  void sample();
  void latch();
  void ot_refill_request();  ///< OT maintenance slot, receiver-first halves
  void ot_refill_finish();
  [[nodiscard]] RunResult finish();
  void abort() noexcept;

 private:
  [[nodiscard]] bool decide_final(std::uint64_t cycle) const;

  const netlist::Netlist& nl_;
  PartyOptions opts_;
  bool halt_driven_;
  std::uint64_t cycle_count_;
  WarmState* warm_;
  gc::Transport* tx_;
  const GarblerEndpoint* leader_ = nullptr;  ///< plan-following mode when set
  std::unique_ptr<WorkPool> owned_pool_;     ///< see GarblerEndpoint
  WorkPool* pool_;
  std::unique_ptr<Planner> planner_;         ///< null in plan-following mode
  std::unique_ptr<EvaluatorSession> session_;
  const StreamProvider* streams_ = nullptr;
  netlist::BitVec bob_bits_;
  netlist::BitVec pub_bits_;
  CyclePlan plan_{};
  RunResult result_;
  RunStats stats_;
};

}  // namespace arm2gc::core
