// Human-readable text serialization for netlists (in the spirit of Fairplay's
// SHDL / TinyGarble's SCD formats). Useful for inspecting generated circuits
// and for caching expensive netlists (the ARM core) across runs.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace arm2gc::netlist {

void dump(const Netlist& nl, std::ostream& os);
[[nodiscard]] std::string dump_to_string(const Netlist& nl);

/// Parses the format produced by dump(). Throws std::runtime_error on
/// malformed input; the result is validate()d before returning.
[[nodiscard]] Netlist load(std::istream& is);
[[nodiscard]] Netlist load_from_string(const std::string& text);

}  // namespace arm2gc::netlist
