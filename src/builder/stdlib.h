// GC-optimized building blocks: the equivalent of TinyGarble's technology
// library. Every block is designed to minimize non-XOR gates under free-XOR
// (ripple adders at 1 AND/bit, 1-AND multiplexers, carry-save multiplier and
// popcount trees).
#pragma once

#include <cstdint>
#include <span>

#include "builder/circuit_builder.h"

namespace arm2gc::builder {

// --- bus utilities ----------------------------------------------------------

/// Constant bus from the low `width` bits of `value`.
Bus bus_constant(CircuitBuilder& cb, std::uint64_t value, std::size_t width);

/// Zero-extends (or truncates) to `width`.
Bus zext(CircuitBuilder& cb, const Bus& a, std::size_t width);
/// Sign-extends (or truncates) to `width`.
Bus sext(CircuitBuilder& cb, const Bus& a, std::size_t width);

Bus not_bus(const Bus& a);
Bus xor_bus(CircuitBuilder& cb, const Bus& a, const Bus& b);
Bus and_bus(CircuitBuilder& cb, const Bus& a, const Bus& b);
Bus or_bus(CircuitBuilder& cb, const Bus& a, const Bus& b);
Bus andn_bus(CircuitBuilder& cb, const Bus& a, const Bus& b);  // a & ~b

// --- shifts by constants (free: pure rewiring) -------------------------------
Bus shl_const(CircuitBuilder& cb, const Bus& a, std::size_t n);
Bus lshr_const(CircuitBuilder& cb, const Bus& a, std::size_t n);
Bus ashr_const(const Bus& a, std::size_t n);
Bus ror_const(const Bus& a, std::size_t n);

// --- reductions ---------------------------------------------------------------
Wire reduce_or(CircuitBuilder& cb, std::span<const Wire> bits);
Wire reduce_and(CircuitBuilder& cb, std::span<const Wire> bits);
Wire reduce_xor(CircuitBuilder& cb, std::span<const Wire> bits);
Wire is_zero(CircuitBuilder& cb, const Bus& a);

// --- arithmetic ----------------------------------------------------------------

/// One-bit full adder at one AND: sum = a^b^c, carry = c ^ ((a^c)&(b^c)).
struct FullAdderOut {
  Wire sum;
  Wire carry;
};
FullAdderOut full_adder(CircuitBuilder& cb, Wire a, Wire b, Wire c);

struct AddOut {
  Bus sum;
  Wire carry_out;  ///< carry out of the MSB (ARM C flag for additions)
  Wire overflow;   ///< signed overflow (ARM V flag)
};
/// Ripple-carry addition a + b + cin; 1 AND per bit.
AddOut add_full(CircuitBuilder& cb, const Bus& a, const Bus& b, Wire cin);
Bus add(CircuitBuilder& cb, const Bus& a, const Bus& b);
/// a - b = a + ~b + 1; carry_out is the ARM-style NOT-borrow.
AddOut sub_full(CircuitBuilder& cb, const Bus& a, const Bus& b);
Bus sub(CircuitBuilder& cb, const Bus& a, const Bus& b);
/// a + 1 (half-adder chain; n-1 ANDs).
Bus inc(CircuitBuilder& cb, const Bus& a);

Wire eq(CircuitBuilder& cb, const Bus& a, const Bus& b);
/// Unsigned a < b (n ANDs: borrow chain only).
Wire ult(CircuitBuilder& cb, const Bus& a, const Bus& b);
/// Signed a < b.
Wire slt(CircuitBuilder& cb, const Bus& a, const Bus& b);

/// Lower `out_width` bits of a*b via carry-save (Wallace-style) columns.
Bus mul_lower(CircuitBuilder& cb, const Bus& a, const Bus& b, std::size_t out_width);

/// Population count of `bits` as a minimal-width bus (carry-save counter tree,
/// ~n ANDs total).
Bus popcount(CircuitBuilder& cb, std::span<const Wire> bits);

// --- selection ---------------------------------------------------------------
Bus mux_bus(CircuitBuilder& cb, Wire sel, const Bus& t, const Bus& f);

/// options[i] selected by the binary value of `sel`; options.size() need not
/// be a power of two (out-of-range selects return options.back()).
Bus select(CircuitBuilder& cb, const Bus& sel, std::span<const Bus> options);

/// One-hot decoder: 2^sel.size() outputs.
std::vector<Wire> decode_onehot(CircuitBuilder& cb, const Bus& sel);

// --- barrel shifter ------------------------------------------------------------

/// Right shift/rotate of `v` by the unsigned value of `amt` (staged muxes,
/// 1 AND per bit per stage). `fill` supplies vacated bits (c0 for LSR, sign
/// for ASR); `rotate` wraps instead.
Bus barrel_right(CircuitBuilder& cb, const Bus& v, const Bus& amt, Wire fill, bool rotate);
Bus barrel_left(CircuitBuilder& cb, const Bus& v, const Bus& amt, Wire fill);

}  // namespace arm2gc::builder
