// Fixture: the pure-public planner surface.
#pragma once
#include "crypto/block.h"
namespace fix::core {
struct CyclePlan {
  unsigned emitted = 0;
};
CyclePlan classify(crypto::Block seed);
}  // namespace fix::core
