// Plain (cleartext) Boolean simulator for sequential netlists. This is the
// functional reference: the garbled protocol must produce exactly these
// outputs, and the ARM netlist is validated against the instruction-set
// simulator through it.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace arm2gc::netlist {

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  /// Binds the parties' input bit vectors (fixed inputs and DFF initial
  /// values index into these) and resets flip-flop state. Vectors are copied.
  void reset(const BitVec& alice = {}, const BitVec& bob = {}, const BitVec& pub = {});

  /// Advances one clock cycle. Streamed inputs (if any) read the given
  /// per-cycle vectors, indexed by Input::bit_index.
  void step(const BitVec& alice_stream = {}, const BitVec& bob_stream = {},
            const BitVec& pub_stream = {});

  /// Value of a wire as of the last step().
  [[nodiscard]] bool wire(WireId w) const { return vals_[w] != 0; }

  /// Current output port values (after at least one step).
  [[nodiscard]] BitVec read_outputs() const;

  /// Current flip-flop state (next-cycle outputs), mainly for lock-step tests.
  [[nodiscard]] bool dff_state(std::size_t i) const { return dff_state_[i] != 0; }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] const Netlist& netlist() const { return nl_; }

 private:
  const Netlist& nl_;
  std::vector<std::uint8_t> vals_;
  std::vector<std::uint8_t> dff_state_;
  std::vector<std::uint8_t> alice_bits_;
  std::vector<std::uint8_t> bob_bits_;
  std::vector<std::uint8_t> pub_bits_;
  std::uint64_t cycle_ = 0;
};

}  // namespace arm2gc::netlist
