// TinyGarble-style sequential benchmark circuits (paper Tables 1 and 2).
// Each factory returns a self-contained instance: the netlist, the cycle
// schedule, the parties' input bindings, streamed inputs, and an output
// decoder — everything a harness needs to run it under any GC mode.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/skipgate.h"
#include "netlist/netlist.h"

namespace arm2gc::circuits {

struct TgInstance {
  std::string name;
  netlist::Netlist nl;
  std::uint64_t cycles = 0;
  netlist::BitVec alice;
  netlist::BitVec bob;
  netlist::BitVec pub;
  core::StreamProvider streams;
  /// Decodes the protocol's sampled outputs into 64-bit result words.
  std::function<std::vector<std::uint64_t>(const std::vector<netlist::BitVec>&)> decode;
};

/// Runs an instance under the given mode and returns (results, stats).
struct TgRun {
  std::vector<std::uint64_t> results;
  core::RunStats stats;
};
TgRun run_instance(const TgInstance& inst, core::Mode mode,
                   gc::Scheme scheme = gc::Scheme::HalfGates);

/// Bit-serial addition of two nbits-wide values (1-bit full adder + carry FF).
TgInstance tg_sum(std::size_t nbits, const netlist::BitVec& a, const netlist::BitVec& b);

/// Bit-serial unsigned comparison a < b (LSB first).
TgInstance tg_compare(std::size_t nbits, const netlist::BitVec& a, const netlist::BitVec& b);

/// Bit-serial Hamming distance with a counter register (TinyGarble's layout).
TgInstance tg_hamming(std::size_t nbits, const netlist::BitVec& a, const netlist::BitVec& b);

/// Combinational popcount-tree Hamming distance (ablation variant).
TgInstance tg_hamming_tree(std::size_t nbits, const netlist::BitVec& a, const netlist::BitVec& b);

/// 32x32 -> 32 shift-and-add multiplier, 32 cycles.
TgInstance tg_mult32(std::uint32_t a, std::uint32_t b);

/// n x n 32-bit matrix product via a sequential MAC, n^3 cycles.
/// a, b are row-major; result row-major from the decoder.
TgInstance tg_matmult(std::size_t n, const std::vector<std::uint32_t>& a,
                      const std::vector<std::uint32_t>& b);

/// SHA3-256 of a single-block message (<= 135 bytes): Keccak-f[1600] round
/// per cycle, 24 cycles; Alice holds the message.
TgInstance tg_sha3_256(const std::vector<std::uint8_t>& message);

/// AES-128: Alice's plaintext under Bob's key, one round per cycle (10
/// cycles) with on-the-fly key expansion; tower-field S-box (36 AND).
TgInstance tg_aes128(const std::array<std::uint8_t, 16>& pt,
                     const std::array<std::uint8_t, 16>& key);

}  // namespace arm2gc::circuits
