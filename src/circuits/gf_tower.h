// Composite-field (tower) arithmetic for the AES S-box circuit.
//
// The AES S-box is inversion in GF(2^8) followed by an affine map. Inversion
// is cheap in the tower GF(((2^2)^2)^2): squarings and scalings are linear
// (free XOR), and the whole inversion costs 36 AND gates (vs 32 in the
// hand-optimized Boyar-Peralta circuit the paper's synthesis library used).
//
// Rather than transcribing published matrices, the isomorphism between the
// AES polynomial field and the tower is *searched for numerically* at
// startup (find a tower element whose minimal polynomial is the AES
// polynomial), making the construction self-verifying; tests additionally pin
// the resulting S-box against the brute-force table.
#pragma once

#include <array>
#include <cstdint>

#include "builder/circuit_builder.h"

namespace arm2gc::circuits {

/// Reference (software) tower arithmetic and the AES<->tower isomorphism.
class GfTower {
 public:
  GfTower();

  /// Multiplication in the tower representation.
  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const;
  /// Inversion in the tower representation (0 -> 0).
  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const;

  /// Map AES-field byte -> tower byte and back (linear bit matrices).
  [[nodiscard]] std::uint8_t to_tower(std::uint8_t x) const;
  [[nodiscard]] std::uint8_t from_tower(std::uint8_t x) const;

  /// GF(16) constant nu used by the degree-2 extension.
  [[nodiscard]] std::uint8_t nu() const { return nu_; }

  /// The AES S-box computed through the tower (must equal the standard one).
  [[nodiscard]] std::uint8_t sbox(std::uint8_t x) const;

 private:
  std::uint8_t nu_ = 0;
  std::array<std::uint8_t, 8> to_tower_cols_{};    // column i = phi(x^i)
  std::array<std::uint8_t, 8> from_tower_cols_{};  // inverse matrix columns
};

/// Builds the 8-bit S-box circuit (36 AND gates) on the given input wires.
/// When `inverse_input_map` is false the input is an AES-field byte; the
/// output is the S-box value. The circuit is pure combinational logic on the
/// builder; callers wire it into larger datapaths.
builder::Bus build_sbox(builder::CircuitBuilder& cb, const builder::Bus& x);

/// Inversion-only circuit in the AES field (useful for tests).
builder::Bus build_gf256_inverse(builder::CircuitBuilder& cb, const builder::Bus& x);

/// Reference AES S-box (brute force, for tests and reference models).
std::uint8_t aes_sbox_reference(std::uint8_t x);

}  // namespace arm2gc::circuits
