#include "gc/otext.h"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "crypto/transpose.h"
#include "gc/otpre.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace arm2gc::gc {

namespace {

using crypto::Block;

// Domain separation: OT randomness must never overlap the label stream
// (Garbler seeds CtrRng with the raw protocol seed), and sender/receiver
// streams must differ from each other.
constexpr Block kSenderSeedTag{0x6f742d736e642d73ull, 0x61726d3267632d30ull};
constexpr Block kReceiverSeedTag{0x6f742d7263762d72ull, 0x61726d3267632d31ull};

// Hash-tweak domains. Garbling tweaks are small sequential counters, so the
// top bits keep OT hashing disjoint from table hashing under the shared
// fixed-key PiHash.
constexpr std::uint64_t kOtTweakTag = 1ull << 63;
constexpr std::uint64_t kCheckTweakTag = 3ull << 62;

// Every receiver batch opens with one clear header block so the sender can
// validate the pairing *before* deciding how many blocks to read — a state
// mismatch must throw, never block a threaded transport on bytes that will
// not come. lo = magic ^ fresh-flag; hi = (batch ordinal << 32) | m.
constexpr std::uint64_t kHeaderMagic = 0x4f542d6261746368ull;  // "OT-batch"

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The per-batch consistency check both sides derive independently: binds
/// the base session id, the batch ordinal, the batch size and the column
/// streams' byte position. Endpoints from different pairings — or desynced
/// by an aborted run, including a request() whose flush() never happened,
/// which advances the receiver's streams but neither ordinal — disagree
/// here and fail before any label is mis-delivered.
Block check_block(const crypto::PiHash& h, Block sid, std::uint64_t batch, std::size_t m,
                  std::uint64_t col_bytes) {
  return h(sid ^ Block{static_cast<std::uint64_t>(m), col_bytes}, kCheckTweakTag ^ batch);
}

// ---------------------------------------------------------------------------
// Ideal backend: the PR-3-era receiver-picks functionality, batched. One
// frame of 2m blocks carries every queued pair; the receiver picks locally,
// so the sender never sees a choice bit. 32 bytes per choice on the wire —
// the old kOtBytesPerChoice constant, now an actual frame size.
// ---------------------------------------------------------------------------

class IdealOtSender final : public OtSender {
 public:
  explicit IdealOtSender(Transport& tx) : tx_(&tx) {}

  void enqueue(Block x0, Block x1) override {
    pend_.push_back(x0);
    pend_.push_back(x1);
  }

  void flush() override {
    if (pend_.empty()) return;
    const std::uint64_t t0 = now_ns();
    tx_->send(pend_.data(), pend_.size(), Traffic::Ot);
    stats_.choices += pend_.size() / 2;
    stats_.batches++;
    stats_.online_bytes += 16 * pend_.size();
    pend_.clear();
    stats_.wall_ns += now_ns() - t0;
  }

 private:
  Transport* tx_;
  std::vector<Block> pend_;
};

class IdealOtReceiver final : public OtReceiver {
 public:
  explicit IdealOtReceiver(Transport& tx) : tx_(&tx) {}

  void enqueue(bool choice, Block* out) override { pend_.push_back({choice, out}); }

  void request() override {}  // no receiver-side message in the ideal wiring

  void finish() override {
    if (pend_.empty()) return;
    const std::uint64_t t0 = now_ns();
    pairs_.resize(2 * pend_.size());
    tx_->recv(pairs_.data(), pairs_.size());
    for (std::size_t j = 0; j < pend_.size(); ++j) {
      *pend_[j].out = pairs_[2 * j + (pend_[j].choice ? 1 : 0)];
    }
    stats_.choices += pend_.size();
    stats_.batches++;
    stats_.online_bytes += 16 * pairs_.size();
    pend_.clear();
    stats_.wall_ns += now_ns() - t0;
  }

 private:
  struct Pending {
    bool choice;
    Block* out;
  };
  Transport* tx_;
  std::vector<Pending> pend_;
  std::vector<Block> pairs_;
};

}  // namespace

// ---------------------------------------------------------------------------
// IKNP extension backend
// ---------------------------------------------------------------------------

IknpSenderState::IknpSenderState(Block seed) : rng_(seed ^ kSenderSeedTag) {
  for (std::size_t i = 0; i < kOtKappa; ++i) {
    s_[i] = rng_.next_bool() ? 1 : 0;
    if (s_[i]) {
      if (i < 64) {
        s_block_.lo |= 1ull << i;
      } else {
        s_block_.hi |= 1ull << (i - 64);
      }
    }
  }
  col_.reserve(kOtKappa);
}

IknpReceiverState::IknpReceiverState(Block seed) : rng_(seed ^ kReceiverSeedTag) {
  col0_.reserve(kOtKappa);
  col1_.reserve(kOtKappa);
}

class IknpOtSender final : public OtSender {
 public:
  IknpOtSender(Transport& tx, Block seed, IknpSenderState* warm)
      : tx_(&tx),
        owned_(warm != nullptr ? nullptr : std::make_unique<IknpSenderState>(seed)),
        st_(warm != nullptr ? warm : owned_.get()) {}

  void enqueue(Block x0, Block x1) override {
    pend_.push_back(x0);
    pend_.push_back(x1);
  }

  void flush() override {
    if (pend_.empty()) return;
    const std::uint64_t t0 = now_ns();
    IknpSenderState& st = *st_;
    const std::size_t m = pend_.size() / 2;
    const std::size_t stride = (m + 7) / 8;

    // [header][base?][check][columns]: the one-block header is validated
    // first — a mismatched peer changes the stream layout, so every later
    // read depends on agreeing about it here.
    const Block header = tx_->recv();
    const std::uint64_t flag = header.lo ^ kHeaderMagic;
    if (flag > 1) {
      throw std::runtime_error("otext: malformed OT batch header (stream desynchronized)");
    }
    const bool peer_fresh = flag == 1;
    if (peer_fresh == st.based_) {
      throw std::runtime_error(
          "otext: base-OT state mismatch (one endpoint warm, the other fresh; "
          "sender/receiver states must come from the same pairing)");
    }
    if ((header.hi >> 32) != st.batches_ ||
        (header.hi & 0xffffffffull) != static_cast<std::uint64_t>(m)) {
      throw std::runtime_error(
          "otext: OT batch desynchronized (ordinal or size disagrees with the peer)");
    }
    if (peer_fresh) run_base(st);

    const Block chk = tx_->recv();
    if (!(chk == check_block(hash_, st.sid_, st.batches_, m, st.col_bytes_))) {
      throw std::runtime_error(
          "otext: base-OT session mismatch (sender/receiver states were not "
          "paired, or a prior run aborted mid-batch)");
    }

    const std::size_t col_blocks = (kOtKappa * stride + 15) / 16;
    frame_.resize(col_blocks);
    tx_->recv(frame_.data(), col_blocks);
    bytes_.resize(col_blocks * 16);
    for (std::size_t b = 0; b < col_blocks; ++b) frame_[b].to_bytes(bytes_.data() + 16 * b);

    // q_i = G(k_i^{s_i}) ^ s_i * u_i, in place over the received columns.
    q_bytes_.resize(kOtKappa * stride);
    for (std::size_t i = 0; i < kOtKappa; ++i) {
      std::uint8_t* q = q_bytes_.data() + i * stride;
      st.col_[i].fill(q, stride);
      if (st.s_[i]) {
        const std::uint8_t* u = bytes_.data() + i * stride;
        for (std::size_t b = 0; b < stride; ++b) q[b] ^= u[b];
      }
    }

    // Row pivot: q_j (kappa bits per OT), then y_j^b = x_j^b ^ H(q_j ^ b*s).
    st.col_bytes_ += stride;
    rows_.resize(m);
    crypto::transpose_128xn(q_bytes_.data(), stride, m, rows_.data());
    out_.resize(2 * m);
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
      Block in[4] = {rows_[j], rows_[j] ^ st.s_block_, rows_[j + 1],
                     rows_[j + 1] ^ st.s_block_};
      const std::uint64_t tw0 = kOtTweakTag | (st.ot_counter_ + j);
      const std::uint64_t tw1 = kOtTweakTag | (st.ot_counter_ + j + 1);
      const std::uint64_t tweaks[4] = {tw0, tw0, tw1, tw1};
      hash_.hash4(in, tweaks, in);
      out_[2 * j] = pend_[2 * j] ^ in[0];
      out_[2 * j + 1] = pend_[2 * j + 1] ^ in[1];
      out_[2 * j + 2] = pend_[2 * j + 2] ^ in[2];
      out_[2 * j + 3] = pend_[2 * j + 3] ^ in[3];
    }
    for (; j < m; ++j) {
      const std::uint64_t tw = kOtTweakTag | (st.ot_counter_ + j);
      out_[2 * j] = pend_[2 * j] ^ hash_(rows_[j], tw);
      out_[2 * j + 1] = pend_[2 * j + 1] ^ hash_(rows_[j] ^ st.s_block_, tw);
    }
    tx_->send(out_.data(), out_.size(), Traffic::Ot);

    st.ot_counter_ += m;
    st.batches_++;
    stats_.choices += m;
    stats_.batches++;
    // IKNP sits entirely on the online path: header + check + columns +
    // ciphertexts, plus the base exchange on a fresh pairing.
    stats_.online_bytes +=
        16 * (2 + col_blocks + 2 * m + (peer_fresh ? 1 + 2 * kOtKappa : 0));
    pend_.clear();
    stats_.wall_ns += now_ns() - t0;
  }

 private:
  void run_base(IknpSenderState& st) {
    A2G_SPAN("ot.base", "ot");
    A2G_COUNT("ot.base_runs");
    // Base phase, receiver-first: [sid][kappa seed pairs]. The sender keeps
    // only the seed its secret s_i selects (the unchosen one is discarded —
    // in-process ideal wiring; see the header note).
    base_.resize(1 + 2 * kOtKappa);
    tx_->recv(base_.data(), base_.size());
    st.sid_ = base_[0];
    st.col_.clear();
    for (std::size_t i = 0; i < kOtKappa; ++i) {
      st.col_.emplace_back(base_[1 + 2 * i + (st.s_[i] ? 1 : 0)]);
    }
    st.based_ = true;
    stats_.base_ots += kOtKappa;
    base_.clear();
    base_.shrink_to_fit();
  }

  Transport* tx_;
  std::unique_ptr<IknpSenderState> owned_;
  IknpSenderState* st_;
  crypto::PiHash hash_;
  std::vector<Block> pend_;  ///< queued pairs, interleaved (x0, x1)
  std::vector<Block> base_;
  std::vector<Block> frame_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::uint8_t> q_bytes_;
  std::vector<Block> rows_;
  std::vector<Block> out_;
};

class IknpOtReceiver final : public OtReceiver {
 public:
  IknpOtReceiver(Transport& tx, Block seed, IknpReceiverState* warm)
      : tx_(&tx),
        owned_(warm != nullptr ? nullptr : std::make_unique<IknpReceiverState>(seed)),
        st_(warm != nullptr ? warm : owned_.get()) {}

  void enqueue(bool choice, Block* out) override { pend_.push_back({choice, out}); }

  void request() override {
    if (pend_.empty()) return;
    const std::uint64_t t0 = now_ns();
    IknpReceiverState& st = *st_;
    const std::size_t m = pend_.size();
    const std::size_t stride = (m + 7) / 8;

    const bool fresh = !st.based_;
    const Block header{kHeaderMagic ^ (fresh ? 1ull : 0ull),
                       (st.batches_ << 32) | static_cast<std::uint64_t>(m)};
    tx_->send(header, Traffic::Ot);
    if (fresh) run_base(st);

    // Pack the choice bits; padding bits past m stay zero on both sides.
    r_bytes_.assign(stride, 0);
    for (std::size_t j = 0; j < m; ++j) {
      if (pend_[j].choice) r_bytes_[j / 8] |= static_cast<std::uint8_t>(1u << (j % 8));
    }

    // t_i = G(k_i^0) (kept for finish); u_i = t_i ^ G(k_i^1) ^ r. Every
    // byte of u is one-time-padded by the fresh G(k_i^1) slice, so the
    // transcript carries no information about r beyond the pad structure.
    t_bytes_.resize(kOtKappa * stride);
    const std::size_t col_blocks = (kOtKappa * stride + 15) / 16;
    u_bytes_.assign(col_blocks * 16, 0);
    for (std::size_t i = 0; i < kOtKappa; ++i) {
      std::uint8_t* t = t_bytes_.data() + i * stride;
      std::uint8_t* u = u_bytes_.data() + i * stride;
      st.col0_[i].fill(t, stride);
      st.col1_[i].fill(u, stride);
      for (std::size_t b = 0; b < stride; ++b) u[b] ^= t[b] ^ r_bytes_[b];
    }

    const Block chk = check_block(hash_, st.sid_, st.batches_, m, st.col_bytes_);
    st.col_bytes_ += stride;
    tx_->send(chk, Traffic::Ot);
    frame_.resize(col_blocks);
    for (std::size_t b = 0; b < col_blocks; ++b) {
      frame_[b] = Block::from_bytes(u_bytes_.data() + 16 * b);
    }
    tx_->send(frame_.data(), col_blocks, Traffic::Ot);
    stats_.online_bytes += 16 * (2 + col_blocks + (fresh ? 1 + 2 * kOtKappa : 0));
    stats_.wall_ns += now_ns() - t0;
  }

  void finish() override {
    if (pend_.empty()) return;
    const std::uint64_t t0 = now_ns();
    IknpReceiverState& st = *st_;
    const std::size_t m = pend_.size();
    const std::size_t stride = (m + 7) / 8;

    ct_.resize(2 * m);
    tx_->recv(ct_.data(), ct_.size());

    rows_.resize(m);
    crypto::transpose_128xn(t_bytes_.data(), stride, m, rows_.data());

    // x_j^{r_j} = y_j^{r_j} ^ H(t_j): q_j ^ r_j*s == t_j on the sender side.
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      Block h[4] = {rows_[j], rows_[j + 1], rows_[j + 2], rows_[j + 3]};
      const std::uint64_t tweaks[4] = {
          kOtTweakTag | (st.ot_counter_ + j), kOtTweakTag | (st.ot_counter_ + j + 1),
          kOtTweakTag | (st.ot_counter_ + j + 2), kOtTweakTag | (st.ot_counter_ + j + 3)};
      hash_.hash4(h, tweaks, h);
      for (std::size_t k = 0; k < 4; ++k) {
        const Pending& p = pend_[j + k];
        *p.out = ct_[2 * (j + k) + (p.choice ? 1 : 0)] ^ h[k];
      }
    }
    for (; j < m; ++j) {
      const Pending& p = pend_[j];
      *p.out = ct_[2 * j + (p.choice ? 1 : 0)] ^
               hash_(rows_[j], kOtTweakTag | (st.ot_counter_ + j));
    }

    st.ot_counter_ += m;
    st.batches_++;
    stats_.choices += m;
    stats_.batches++;
    stats_.online_bytes += 16 * ct_.size();
    pend_.clear();
    stats_.wall_ns += now_ns() - t0;
  }

 private:
  void run_base(IknpReceiverState& st) {
    A2G_SPAN("ot.base", "ot");
    A2G_COUNT("ot.base_runs");
    base_.clear();
    base_.reserve(1 + 2 * kOtKappa);
    st.sid_ = st.rng_.next_block();
    base_.push_back(st.sid_);
    st.col0_.clear();
    st.col1_.clear();
    for (std::size_t i = 0; i < kOtKappa; ++i) {
      const Block k0 = st.rng_.next_block();
      const Block k1 = st.rng_.next_block();
      base_.push_back(k0);
      base_.push_back(k1);
      st.col0_.emplace_back(k0);
      st.col1_.emplace_back(k1);
    }
    tx_->send(base_.data(), base_.size(), Traffic::Ot);
    st.based_ = true;
    stats_.base_ots += kOtKappa;
    base_.clear();
    base_.shrink_to_fit();
  }

  struct Pending {
    bool choice;
    Block* out;
  };

  Transport* tx_;
  std::unique_ptr<IknpReceiverState> owned_;
  IknpReceiverState* st_;
  crypto::PiHash hash_;
  std::vector<Pending> pend_;
  std::vector<Block> base_;
  std::vector<std::uint8_t> r_bytes_;
  std::vector<std::uint8_t> t_bytes_;
  std::vector<std::uint8_t> u_bytes_;
  std::vector<Block> frame_;
  std::vector<Block> ct_;
  std::vector<Block> rows_;
};

std::unique_ptr<OtSender> make_ot_sender(OtBackend backend, Transport& tx, Block seed,
                                         IknpSenderState* warm, RandomOtPoolSender* warm_pool,
                                         std::size_t pool_target) {
  if (backend == OtBackend::Precomp) {
    return make_precomp_ot_sender(tx, seed, warm_pool, pool_target);
  }
  if (backend == OtBackend::Iknp) {
    return std::make_unique<IknpOtSender>(tx, seed, warm);
  }
  return std::make_unique<IdealOtSender>(tx);
}

std::unique_ptr<OtReceiver> make_ot_receiver(OtBackend backend, Transport& tx, Block seed,
                                             IknpReceiverState* warm,
                                             RandomOtPoolReceiver* warm_pool,
                                             std::size_t pool_target) {
  if (backend == OtBackend::Precomp) {
    return make_precomp_ot_receiver(tx, seed, warm_pool, pool_target);
  }
  if (backend == OtBackend::Iknp) {
    return std::make_unique<IknpOtReceiver>(tx, seed, warm);
  }
  return std::make_unique<IdealOtReceiver>(tx);
}

}  // namespace arm2gc::gc
