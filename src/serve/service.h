// GarblerService: one garbler, many concurrent evaluator clients — the
// "millions of users" deployment shape of the paper's framework, built from
// the pieces the earlier PRs left in place. Each connection is a resumable
// state machine over core::GarblerEndpoint's stepwise schedule hooks (the
// same hooks the in-process lock-step driver interleaves), driven by a
// readiness loop over non-blocking SocketDuplexes instead of a thread per
// connection:
//
//   - The per-phase recv points of the garbler schedule are predictable
//     from public data (backend, netlist shape, plan, pool fill level), so
//     the machine runs hooks greedily and parks the connection on
//     readability only where the client's receiver-first frames are known
//     to be coming. A mispredicted park cannot corrupt anything — every
//     recv inside a hook falls back to a bounded inline poll() — it only
//     costs scheduling fairness, so the predicates stay conservative.
//   - Backpressure: a connection whose send queue exceeds the soft limit
//     stops being read or advanced (parked on writability) until the
//     kernel drains it; the transport's hard cap bounds the queue
//     absolutely. Nothing ever buffers unboundedly.
//   - WarmStates are pooled per (program, OT backend, pool size): a repeat
//     client hits warm plan caches and cone memos. The OT half is re-based
//     on every release — warm extension streams are pairing-specific, and
//     a fresh client against an advanced stream would desync — which is
//     also exactly the abort path, so a mid-protocol disconnect returns
//     the WarmState to the pool in the same known-good shape as a clean
//     finish. A pooled WarmState can never be poisoned by a dying client.
//
// `shards` event-loop threads each own a private poller and a disjoint set
// of connections (handed over once at accept), so no connection state is
// ever shared across threads; the cross-thread surface is the warm pool
// (mutex) and the stats (atomics).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/party.h"
#include "netlist/netlist.h"
#include "serve/poller.h"

namespace arm2gc::serve {

/// One servable program: a netlist plus the garbler's inputs and the
/// protocol contract. The netlist, streams and name are caller-owned and
/// must outlive the service. `opts` carries the schedule (fixed_cycles /
/// halt_wire / max_cycles), the public seed and the service's private seed;
/// scheme and OT backend are per-client (adopted from each hello).
struct ProgramSpec {
  std::string name;
  const netlist::Netlist* nl = nullptr;
  core::PartyOptions opts;
  netlist::BitVec alice_bits;
  netlist::BitVec pub_bits;
  const core::StreamProvider* streams = nullptr;  ///< alice/pub halves only
};

struct ServiceOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;     ///< 0 = ephemeral; port() reports the bound one
  std::size_t max_clients = 64;
  std::size_t shards = 1;     ///< event-loop threads
  std::size_t warm_pool = 4;  ///< WarmStates retained per program/backend key
  std::size_t exec_threads = 1;  ///< worker threads per run (PartyOptions::threads)
  /// Park a connection (stop reading/advancing) beyond this many queued
  /// send bytes; the hard limit is enforced inside the transport.
  std::size_t send_soft_limit = 1u << 20;
  std::size_t send_hard_limit = 8u << 20;
  /// Inline-wait deadline for a stalled peer; expiry tears the run down.
  int recv_timeout_ms = 30'000;
  PollerBackend poller = PollerBackend::Default;
  /// Live telemetry: bind a plain-HTTP /metrics listener (Prometheus text
  /// exposition of the obs registry) served from shard 0's event loop.
  /// -1 = disabled; 0 = ephemeral (GarblerService::metrics_port() reports
  /// the bound port). The page renders whatever the obs registry holds —
  /// under ARM2GC_OBS=OFF it degrades to a comment line plus the service
  /// counters published at render time.
  int metrics_port = -1;
  std::string metrics_host = "127.0.0.1";
  /// Shard 0 republishes ServiceStats into the obs registry every this-many
  /// milliseconds; 0 = only when a /metrics page is rendered.
  int stats_interval_ms = 0;
};

/// Monotonic service counters (all totals since start()).
struct ServiceStats {
  std::uint64_t accepted = 0;        ///< connections accepted
  std::uint64_t hello_rejected = 0;  ///< closed at the door (busy/unknown/...)
  std::uint64_t runs_ok = 0;
  std::uint64_t runs_failed = 0;  ///< disconnects + protocol failures
  std::uint64_t warm_hits = 0;    ///< runs served from a pooled WarmState
  std::uint64_t warm_misses = 0;  ///< runs that built a fresh WarmState
  std::uint64_t gates_garbled = 0;  ///< sum of garbled_non_xor over runs_ok
  std::uint64_t cycles_run = 0;     ///< sum of cycles over runs_ok
  /// Max send-queue depth any connection ever reached (bytes).
  std::uint64_t send_queue_high_water = 0;
  std::uint64_t active = 0;  ///< connections open right now
};

class GarblerService {
 public:
  /// Binds the listener (so port() is valid immediately); start() spawns
  /// the shard threads. Throws std::invalid_argument on an empty program
  /// set or a spec without a netlist.
  GarblerService(std::vector<ProgramSpec> programs, const ServiceOptions& opts);
  ~GarblerService();  ///< stop()s if still running
  GarblerService(const GarblerService&) = delete;
  GarblerService& operator=(const GarblerService&) = delete;

  void start();
  /// Stops accepting, aborts in-flight runs, joins the shards. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const;
  /// Bound /metrics port, 0 when telemetry is disabled.
  [[nodiscard]] std::uint16_t metrics_port() const;
  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace arm2gc::serve
