// Multi-session garbler service + evaluator client for ARM programs: one
// long-lived garbler process (Alice) serves many concurrent evaluator
// connections (Bob) over TCP, multiplexed on an event loop instead of a
// thread per connection — the serving deployment of the framework.
//
//   # serve: register programs (each with Alice's input words) and listen
//   arm2gc_serve --mode serve --listen 127.0.0.1:7432
//                --program hamming160 --input 1,2,3,4,5
//                [--max-clients 64] [--shards 2] [--warm-pool 4]
//   # client: one or more runs, Bob's input words
//   arm2gc_serve --mode client --connect 127.0.0.1:7432
//                --program hamming160 --input 6,7,8,9,10 --ot iknp
//
// The client prints the same `program=` / `outputs=` / `table_digest=` /
// `comm` summary lines as tools/arm2gc_party, and under the default seeds a
// served run is byte-identical to `arm2gc_party --role local` — which is
// exactly what CI diffs.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arm/arm2gc.h"
#include "bench_util.h"
#include "obs/trace.h"
#include "programs/programs.h"
#include "serve/client.h"
#include "serve/service.h"

using namespace arm2gc;

namespace {

std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct ProgramArg {
  std::string name;
  std::vector<std::uint32_t> input;  ///< Alice's words (serve mode)
};

struct Args {
  std::string mode;
  std::string listen;
  std::string connect;
  std::vector<ProgramArg> programs;  ///< serve: many; client: exactly one
  std::uint64_t max_cycles = 1u << 20;
  gc::Scheme scheme = gc::Scheme::HalfGates;
  gc::OtBackend ot = gc::OtBackend::Iknp;
  std::size_t ot_pool = gc::kDefaultOtPoolBatch;
  std::size_t max_clients = 64;
  std::size_t shards = 1;
  std::size_t exec_threads = 1;
  std::size_t warm_pool = 4;
  std::uint64_t exit_after_runs = 0;  ///< serve: exit once this many runs finished
  std::size_t runs = 1;               ///< client: sequential runs on one warm state
  int metrics_port = -1;              ///< serve: /metrics listener (-1 = off)
  std::string metrics_host = "127.0.0.1";
  int stats_interval_ms = 0;          ///< serve: periodic obs snapshot cadence
  std::string trace_path;             ///< chrome://tracing JSON output
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "arm2gc_serve: %s\n", msg);
  std::fprintf(stderr,
               "usage: arm2gc_serve --mode serve|client\n"
               "  serve:  --listen host:port\n"
               "          --program <builtin> --input w,w,...   (repeatable pairs;\n"
               "                  builtins: sum32 compare32 mult32 hamming160)\n"
               "          [--max-clients N] [--shards N] [--exec-threads N]\n"
               "          [--warm-pool N] [--exit-after-runs N]\n"
               "          [--metrics-port N] [--metrics-host H] [--stats-interval-ms N]\n"
               "  client: --connect host:port --program <builtin> --input w,w,...\n"
               "          [--ot ideal|iknp|precomp] [--ot-pool N] [--runs N]\n"
               "  common: [--max-cycles N] [--scheme halfgates|grr3|classic4]\n"
               "          [--json <path>] [--trace <path>]\n");
  std::exit(2);
}

std::vector<std::uint32_t> parse_words(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(static_cast<std::uint32_t>(std::stoul(item, nullptr, 0)));
  }
  return out;
}

std::pair<std::string, std::uint16_t> parse_hostport(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) usage("expected host:port");
  return {s.substr(0, colon),
          static_cast<std::uint16_t>(std::stoul(s.substr(colon + 1), nullptr, 10))};
}

Args parse_args(int argc, char** argv) {
  Args a;
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing flag value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--mode") {
      a.mode = next(i);
    } else if (f == "--listen") {
      a.listen = next(i);
    } else if (f == "--connect") {
      a.connect = next(i);
    } else if (f == "--program") {
      a.programs.push_back(ProgramArg{next(i), {}});
    } else if (f == "--input") {
      if (a.programs.empty()) usage("--input must follow a --program");
      a.programs.back().input = parse_words(next(i));
    } else if (f == "--max-cycles") {
      a.max_cycles = std::stoull(next(i), nullptr, 0);
    } else if (f == "--max-clients") {
      a.max_clients = std::stoull(next(i), nullptr, 0);
    } else if (f == "--shards") {
      a.shards = std::stoull(next(i), nullptr, 0);
    } else if (f == "--exec-threads") {
      a.exec_threads = std::stoull(next(i), nullptr, 0);
    } else if (f == "--warm-pool") {
      a.warm_pool = std::stoull(next(i), nullptr, 0);
    } else if (f == "--exit-after-runs") {
      a.exit_after_runs = std::stoull(next(i), nullptr, 0);
    } else if (f == "--metrics-port") {
      a.metrics_port = static_cast<int>(std::stoul(next(i), nullptr, 0));
    } else if (f == "--metrics-host") {
      a.metrics_host = next(i);
    } else if (f == "--stats-interval-ms") {
      a.stats_interval_ms = static_cast<int>(std::stoul(next(i), nullptr, 0));
    } else if (f == "--json") {
      benchutil::json().set_path(next(i));
    } else if (f == "--trace") {
      a.trace_path = next(i);
    } else if (f == "--runs") {
      a.runs = std::stoull(next(i), nullptr, 0);
      if (a.runs == 0) usage("--runs must be nonzero");
    } else if (f == "--ot-pool") {
      a.ot_pool = std::stoull(next(i), nullptr, 0);
      if (a.ot_pool == 0) usage("--ot-pool must be nonzero");
    } else if (f == "--scheme") {
      const std::string v = next(i);
      if (v == "halfgates") {
        a.scheme = gc::Scheme::HalfGates;
      } else if (v == "grr3") {
        a.scheme = gc::Scheme::Grr3;
      } else if (v == "classic4") {
        a.scheme = gc::Scheme::Classic4;
      } else {
        usage("unknown scheme");
      }
    } else if (f == "--ot") {
      const std::string v = next(i);
      if (v == "ideal") {
        a.ot = gc::OtBackend::Ideal;
      } else if (v == "iknp") {
        a.ot = gc::OtBackend::Iknp;
      } else if (v == "precomp") {
        a.ot = gc::OtBackend::Precomp;
      } else {
        usage("unknown OT backend");
      }
    } else {
      usage(("unknown flag " + f).c_str());
    }
  }
  if (a.mode != "serve" && a.mode != "client") usage("--mode must be serve or client");
  if (a.programs.empty()) usage("--program is required");
  return a;
}

programs::Program load_program(const std::string& name) {
  if (name == "sum32") return programs::sum(1);
  if (name == "compare32") return programs::compare(1);
  if (name == "mult32") return programs::mult32();
  if (name == "hamming160") return programs::hamming(5);
  usage(("unknown builtin program " + name).c_str());
}

/// One registered machine: the Arm2Gc instance must outlive the service
/// (ProgramSpec borrows its netlist).
struct Registered {
  std::unique_ptr<arm::Arm2Gc> machine;
  serve::ProgramSpec spec;
};

int run_serve(const Args& a) {
  if (a.listen.empty()) usage("serve mode needs --listen");
  const auto [host, port] = parse_hostport(a.listen);

  std::vector<Registered> registered;
  std::vector<serve::ProgramSpec> specs;
  for (const ProgramArg& pa : a.programs) {
    const programs::Program prog = load_program(pa.name);
    Registered r;
    r.machine = std::make_unique<arm::Arm2Gc>(prog.cfg, prog.words);
    r.spec.name = pa.name;
    r.spec.nl = &r.machine->cpu().nl;
    r.spec.opts =
        r.machine->party_options(core::Role::Garbler, a.max_cycles, a.scheme);
    r.spec.alice_bits = r.machine->alice_input_bits(pa.input);
    registered.push_back(std::move(r));
    specs.push_back(registered.back().spec);
  }

  serve::ServiceOptions so;
  so.host = host;
  so.port = port;
  so.max_clients = a.max_clients;
  so.shards = a.shards;
  so.exec_threads = a.exec_threads;
  so.warm_pool = a.warm_pool;
  so.metrics_port = a.metrics_port;
  so.metrics_host = a.metrics_host;
  so.stats_interval_ms = a.stats_interval_ms;
  serve::GarblerService service(std::move(specs), so);
  service.start();
  std::fprintf(stderr, "[serve] listening on %s:%u (%zu programs, %zu shards)\n",
               host.c_str(), service.port(), a.programs.size(), so.shards);
  if (service.metrics_port() != 0) {
    std::fprintf(stderr, "[serve] metrics on http://%s:%u/metrics\n",
                 so.metrics_host.c_str(), service.metrics_port());
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    if (a.exit_after_runs != 0) {
      const serve::ServiceStats st = service.stats();
      if (st.runs_ok + st.runs_failed >= a.exit_after_runs) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  service.stop();

  const serve::ServiceStats st = service.stats();
  std::printf("serve accepted=%llu runs_ok=%llu runs_failed=%llu rejected=%llu\n",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.runs_ok),
              static_cast<unsigned long long>(st.runs_failed),
              static_cast<unsigned long long>(st.hello_rejected));
  std::printf("serve warm_hits=%llu warm_misses=%llu gates=%llu cycles=%llu high_water=%llu\n",
              static_cast<unsigned long long>(st.warm_hits),
              static_cast<unsigned long long>(st.warm_misses),
              static_cast<unsigned long long>(st.gates_garbled),
              static_cast<unsigned long long>(st.cycles_run),
              static_cast<unsigned long long>(st.send_queue_high_water));
  benchutil::json_service_stats("serve", st);
  if (benchutil::finish() != 0) return 1;
  return st.runs_failed == 0 ? 0 : 1;
}

int run_client(const Args& a) {
  if (a.connect.empty()) usage("client mode needs --connect");
  if (a.programs.size() != 1) usage("client mode takes exactly one --program");
  const auto [host, port] = parse_hostport(a.connect);
  const ProgramArg& pa = a.programs.front();
  const programs::Program prog = load_program(pa.name);
  const arm::Arm2Gc machine(prog.cfg, prog.words);

  serve::ClientOptions co;
  co.program = pa.name;
  co.scheme = a.scheme;
  co.ot_backend = a.ot;
  co.ot_pool = a.ot_pool;
  co.halt_wire = machine.cpu().halt_wire;
  co.max_cycles = a.max_cycles;
  co.threads = a.exec_threads;

  // One warm state across --runs: repeat runs ride the warm plan caches on
  // both sides, the serving scenario.
  core::WarmState::Options wopts;
  wopts.ot_backend = a.ot;
  wopts.ot_pool = a.ot_pool;
  wopts.seed = co.protocol_seed;
  core::WarmState warm(core::Role::Evaluator, wopts);
  const netlist::BitVec bob = machine.bob_input_bits(pa.input);

  serve::ClientResult res;
  for (std::size_t r = 0; r < a.runs; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    res = serve::run_client(host, port, machine.cpu().nl, co, bob, {}, nullptr, &warm);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::fprintf(stderr, "[client] run %zu/%zu: %.1f ms\n", r + 1, a.runs, ms);
  }

  const std::vector<std::uint32_t> outputs = machine.decode_output_bits(res.outputs);
  const gc::CommStats comm = res.comm_total();
  std::printf("role=client\n");
  std::printf("program=%s cycles=%llu garbled_non_xor=%llu\n", pa.name.c_str(),
              static_cast<unsigned long long>(res.cycles),
              static_cast<unsigned long long>(res.garbled_non_xor));
  std::printf("outputs=");
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    std::printf("%s%08x", i == 0 ? "" : " ", outputs[i]);
  }
  std::printf("\n");
  std::printf("table_digest=%s\n", res.table_digest.hex().c_str());
  std::printf("comm garbled_table=%llu input_label=%llu ot=%llu output=%llu total=%llu\n",
              static_cast<unsigned long long>(comm.garbled_table_bytes),
              static_cast<unsigned long long>(comm.input_label_bytes),
              static_cast<unsigned long long>(comm.ot_bytes),
              static_cast<unsigned long long>(comm.output_bytes),
              static_cast<unsigned long long>(comm.total()));
  if (benchutil::json().enabled()) {
    benchutil::json().add("client.program", pa.name);
    benchutil::json().add("client.runs", static_cast<std::uint64_t>(a.runs));
    benchutil::json().add("client.cycles", res.cycles);
    benchutil::json().add("client.table_digest", res.table_digest.hex());
    benchutil::json_stats("client", res.stats);
  }
  return benchutil::finish();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args(argc, argv);
    if (!a.trace_path.empty()) obs::Tracer::instance().enable();
    const int rc = a.mode == "serve" ? run_serve(a) : run_client(a);
    if (!a.trace_path.empty() &&
        !obs::Tracer::instance().export_to_file(a.trace_path)) {
      std::fprintf(stderr, "arm2gc_serve: cannot write trace %s\n",
                   a.trace_path.c_str());
      return 1;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "arm2gc_serve: %s\n", e.what());
    return 1;
  }
}
