// Tests for the observability subsystem (src/obs/): histogram percentile
// math pinned against a sorted-vector oracle, trace-JSON well-formedness,
// registry concurrency under the WorkPool, Prometheus text rendering, and
// the differential pin that turning observability on leaves every protocol
// byte identical. Placeholder sections are extended below as integration
// lands.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "builder/circuit_builder.h"
#include "builder/stdlib.h"
#include "core/skipgate.h"
#include "core/workpool.h"
#include "gc/transport_socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/service.h"
#include "test_util.h"

namespace {

using namespace arm2gc;
using a2gtest::to_bits;
using arm2gc::obs::Histogram;
using arm2gc::obs::Registry;
using arm2gc::obs::Tracer;

#if ARM2GC_OBS

// ---------------------------------------------------------------------------
// Histogram: bucket mapping and percentile bounds vs a sorted-vector oracle.
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketEdges) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  // Every finite bucket's edges agree with bucket_of at both ends.
  for (std::size_t b = 1; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b) - 1), b);
  }
  // Overflow bucket captures everything at and beyond its lower edge.
  EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(Histogram::kBuckets - 1)),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
}

// Nearest-rank oracle on the raw samples; the histogram can only answer at
// bucket resolution, so the pin is: the oracle's exact answer lies inside
// percentile_bounds(p), and percentile(p) lies inside the same bucket.
void check_against_oracle(const std::vector<std::uint64_t>& samples) {
  Histogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v : samples) {
    h.record(v);
    sum += v;
  }
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.sum, sum);

  for (double p : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p * static_cast<double>(sorted.size()))));
    const std::uint64_t exact = sorted[rank - 1];
    const Histogram::Bounds bounds = h.percentile_bounds(p);
    EXPECT_LE(bounds.lo, exact) << "p=" << p;
    EXPECT_GE(bounds.hi, exact) << "p=" << p;
    const double est = h.percentile(p);
    EXPECT_GE(est, static_cast<double>(bounds.lo)) << "p=" << p;
    EXPECT_LE(est, static_cast<double>(bounds.hi) + 1.0) << "p=" << p;
  }
}

TEST(ObsHistogram, PercentilesMatchSortedOracleUniform) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> samples(10000);
  for (auto& v : samples) v = rng() % 2'000'000;  // ~2ms span in ns
  check_against_oracle(samples);
}

TEST(ObsHistogram, PercentilesMatchSortedOracleHeavyTail) {
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform: exercises many buckets, including zeros and huge values.
    const unsigned shift = static_cast<unsigned>(rng() % 50);
    samples.push_back(rng() >> (63 - (shift % 63)));
  }
  samples[0] = 0;
  samples[1] = ~std::uint64_t{0};
  check_against_oracle(samples);
}

TEST(ObsHistogram, EmptyAndSingleton) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile_bounds(0.99).hi, 0u);
  h.record(1000);
  const Histogram::Bounds b = h.percentile_bounds(0.5);
  EXPECT_LE(b.lo, 1000u);
  EXPECT_GE(b.hi, 1000u);
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------------
// Registry: concurrency under the WorkPool — counters lose no increments and
// histograms lose no samples when hammered from pool workers.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ConcurrentUnderWorkPool) {
  arm2gc::obs::Counter& c =
      Registry::instance().counter("obs_test.pool.increments");
  Histogram& h = Registry::instance().histogram("obs_test.pool.values");
  const std::uint64_t c0 = c.value();
  const std::uint64_t h0 = h.count();

  constexpr std::size_t kTasks = 256;
  constexpr std::uint64_t kPerTask = 1000;
  arm2gc::core::WorkPool pool(4);
  pool.run(kTasks, nullptr, nullptr, [&](std::size_t task) {
    for (std::uint64_t i = 0; i < kPerTask; ++i) {
      c.add();
      h.record(task * kPerTask + i);
    }
  });

  EXPECT_EQ(c.value() - c0, kTasks * kPerTask);
  EXPECT_EQ(h.count() - h0, kTasks * kPerTask);
}

// ---------------------------------------------------------------------------
// Prometheus text rendering.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, PrometheusNameSanitization) {
  EXPECT_EQ(Registry::prometheus_name("serve.phase.work_ns"),
            "arm2gc_serve_phase_work_ns");
  EXPECT_EQ(Registry::prometheus_name("arm2gc_already_prefixed"),
            "arm2gc_already_prefixed");
  EXPECT_EQ(Registry::prometheus_name("weird-name!x"), "arm2gc_weird_name_x");
}

TEST(ObsRegistry, PrometheusRenderShape) {
  Registry& reg = Registry::instance();
  reg.counter("obs_test.render.count").add(42);
  reg.gauge("obs_test.render.gauge").set(-7);
  Histogram& h = reg.histogram("obs_test.render.lat_ns");
  h.reset();
  h.record(100);
  h.record(3000);

  std::string out;
  reg.render_prometheus(out);
  EXPECT_NE(out.find("# TYPE arm2gc_obs_test_render_count counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE arm2gc_obs_test_render_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("arm2gc_obs_test_render_gauge -7\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE arm2gc_obs_test_render_lat_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("arm2gc_obs_test_render_lat_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("arm2gc_obs_test_render_lat_ns_sum 3100\n"),
            std::string::npos);
  EXPECT_NE(out.find("arm2gc_obs_test_render_lat_ns_count 2\n"),
            std::string::npos);
  // le buckets are cumulative and non-decreasing.
  std::size_t pos = 0;
  std::uint64_t prev = 0;
  const std::string needle = "arm2gc_obs_test_render_lat_ns_bucket{le=\"";
  while ((pos = out.find(needle, pos)) != std::string::npos) {
    const std::size_t sp = out.find("} ", pos);
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t cum = std::stoull(out.substr(sp + 2));
    EXPECT_GE(cum, prev);
    prev = cum;
    pos = sp;
  }
  EXPECT_EQ(prev, 2u);
}

// ---------------------------------------------------------------------------
// Tracer: deterministic clock injection + chrome://tracing JSON schema.
// ---------------------------------------------------------------------------

std::uint64_t fake_clock() {
  static std::atomic<std::uint64_t> t{0};
  return t.fetch_add(1500, std::memory_order_relaxed);  // 1.5us per tick
}

// Minimal JSON checker for the exact subset the exporter emits: object ->
// "traceEvents" -> array of flat objects with string/number values.
bool skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r'))
    ++i;
  return i < s.size();
}

bool parse_string(const std::string& s, std::size_t& i, std::string* out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) return false;
    }
    if (out != nullptr) out->push_back(s[i]);
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool parse_number(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
                          s[i] == '.' || s[i] == '-'))
    ++i;
  return i > start;
}

// Parses one {"key":value,...} object of string/number values; returns the
// set of keys seen via `keys`.
bool parse_flat_object(const std::string& s, std::size_t& i,
                       std::vector<std::string>* keys) {
  if (!skip_ws(s, i) || s[i] != '{') return false;
  ++i;
  if (!skip_ws(s, i)) return false;
  if (s[i] == '}') {
    ++i;
    return true;
  }
  for (;;) {
    std::string key;
    if (!skip_ws(s, i) || !parse_string(s, i, &key)) return false;
    if (keys != nullptr) keys->push_back(key);
    if (!skip_ws(s, i) || s[i] != ':') return false;
    ++i;
    if (!skip_ws(s, i)) return false;
    if (s[i] == '"') {
      if (!parse_string(s, i, nullptr)) return false;
    } else if (!parse_number(s, i)) {
      return false;
    }
    if (!skip_ws(s, i)) return false;
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') {
      ++i;
      return true;
    }
    return false;
  }
}

// Validates the whole chrome-trace document and counts events.
bool validate_trace_json(const std::string& s, std::size_t* num_events) {
  std::size_t i = 0;
  if (!skip_ws(s, i) || s[i] != '{') return false;
  ++i;
  std::string key;
  if (!skip_ws(s, i) || !parse_string(s, i, &key) || key != "traceEvents")
    return false;
  if (!skip_ws(s, i) || s[i] != ':') return false;
  ++i;
  if (!skip_ws(s, i) || s[i] != '[') return false;
  ++i;
  std::size_t n = 0;
  if (!skip_ws(s, i)) return false;
  if (s[i] != ']') {
    for (;;) {
      std::vector<std::string> keys;
      if (!parse_flat_object(s, i, &keys)) return false;
      // Required chrome-trace complete-event fields.
      for (const char* req : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
        if (std::find(keys.begin(), keys.end(), req) == keys.end())
          return false;
      }
      ++n;
      if (!skip_ws(s, i)) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (s[i] != ']') return false;
  }
  ++i;
  if (!skip_ws(s, i) || s[i] != '}') return false;
  ++i;
  if (num_events != nullptr) *num_events = n;
  return true;
}

TEST(ObsTrace, SpanRecordingWithInjectedClock) {
  Tracer& t = Tracer::instance();
  t.clear();
  t.enable(&fake_clock);
  {
    arm2gc::obs::Span outer("outer", "test");
    arm2gc::obs::Span inner("inner \"quoted\"\n", "test");
  }
  t.disable();
  EXPECT_EQ(t.event_count(), 2u);

  const std::string json = t.export_json();
  std::size_t n = 0;
  ASSERT_TRUE(validate_trace_json(json, &n)) << json;
  EXPECT_EQ(n, 2u);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  // The quoted/newline name must have been escaped.
  EXPECT_NE(json.find("inner \\\"quoted\\\"\\n"), std::string::npos);

  t.clear();
  EXPECT_EQ(t.event_count(), 0u);
  std::size_t n_empty = 1;
  ASSERT_TRUE(validate_trace_json(t.export_json(), &n_empty));
  EXPECT_EQ(n_empty, 0u);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  Tracer& t = Tracer::instance();
  t.clear();
  ASSERT_FALSE(t.enabled());
  {
    A2G_SPAN("never", "test");
  }
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(ObsTrace, ConcurrentSpansUnderWorkPool) {
  Tracer& t = Tracer::instance();
  t.clear();
  t.enable(nullptr);  // steady clock
  constexpr std::size_t kTasks = 64;
  arm2gc::core::WorkPool pool(4);
  pool.run(kTasks, nullptr, nullptr,
           [&](std::size_t) { A2G_SPAN("task", "obs_test"); });
  t.disable();
  EXPECT_EQ(t.event_count(), kTasks);
  std::size_t n = 0;
  ASSERT_TRUE(validate_trace_json(t.export_json(), &n));
  EXPECT_EQ(n, kTasks);
  t.clear();
}

#endif  // ARM2GC_OBS

// The exporter must write a valid (possibly empty) document in both build
// shapes, so `--trace` never produces a file chrome://tracing rejects.
TEST(ObsTrace, ExportAlwaysValidJson) {
  const std::string json = Tracer::instance().export_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Differential pin: observability must never move a protocol byte. Compiled
// in BOTH build shapes — the hard-coded golden digest below is checked under
// ARM2GC_OBS=ON and =OFF alike, so compile-time obs can't shift bytes either;
// within one binary, a fully-active tracer+registry run must match a quiet
// run field for field.
// ---------------------------------------------------------------------------

// Golden table digest of the run below (Iknp, pool 16, 2 threads, a=77,
// b=200). The same constant is asserted by the ARM2GC_OBS=OFF build.
constexpr const char* kObsAdderGoldenDigest =
    "9758814fd798f4a5c6198debe0f6f232";

netlist::Netlist obs_adder_netlist() {
  builder::CircuitBuilder cb;
  const builder::Bus x = cb.input_bus(netlist::Owner::Alice, 8, 0);
  const builder::Bus y = cb.input_bus(netlist::Owner::Bob, 8, 0);
  cb.output_bus(builder::add(cb, x, y));
  return cb.take();
}

core::RunResult obs_adder_run(const netlist::Netlist& nl) {
  core::RunOptions opts;
  opts.fixed_cycles = 1;
  opts.exec.ot_backend = gc::OtBackend::Iknp;
  opts.exec.ot_pool = 16;
  opts.exec.threads = 2;
  return core::SkipGateDriver(nl, opts).run(to_bits(77, 8), to_bits(200, 8));
}

TEST(ObsDifferential, ProtocolBytesIdenticalWithObsActive) {
  const netlist::Netlist nl = obs_adder_netlist();
  Tracer& t = Tracer::instance();
  t.disable();
  t.clear();

  const core::RunResult quiet = obs_adder_run(nl);

  t.enable();  // spans record; registry histograms/counters always record
  const core::RunResult traced = obs_adder_run(nl);
  t.disable();

  EXPECT_EQ(traced.final_outputs, quiet.final_outputs);
  EXPECT_TRUE(traced.stats.table_digest == quiet.stats.table_digest);
  EXPECT_EQ(traced.stats.garbled_non_xor, quiet.stats.garbled_non_xor);
  EXPECT_EQ(traced.stats.comm.total(), quiet.stats.comm.total());
  EXPECT_EQ(traced.stats.ot_online_bytes, quiet.stats.ot_online_bytes);
  EXPECT_EQ(traced.stats.cycles, quiet.stats.cycles);

  // Cross-build golden pin (77 + 200 = 277 -> 0x15 in 8 bits, and the exact
  // table bytes that produced it).
  EXPECT_EQ(quiet.final_outputs, to_bits(277 & 0xff, 8));
  EXPECT_EQ(quiet.stats.table_digest.hex(), kObsAdderGoldenDigest);
  t.clear();
}

// ---------------------------------------------------------------------------
// Live /metrics endpoint: a GarblerService with telemetry bound must serve
// Prometheus text while running, reflect completed runs in its counters, and
// reject unknown paths/methods. Compiled in both shapes — under OFF the page
// degrades to the compiled-out comment but must still be valid HTTP.
// ---------------------------------------------------------------------------

std::string http_request(std::uint16_t port, const std::string& request) {
  const std::unique_ptr<gc::SocketDuplex> sock =
      gc::SocketDuplex::connect("127.0.0.1", port);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(sock->fd(), request.data() + off,
                             request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return {};
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(sock->fd(), buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  return resp;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n");
}

TEST(ObsService, LiveMetricsScrape) {
  const netlist::Netlist nl = obs_adder_netlist();
  serve::ProgramSpec spec;
  spec.name = "adder8";
  spec.nl = &nl;
  spec.opts.fixed_cycles = 1;
  spec.alice_bits = to_bits(77, 8);

  serve::ServiceOptions so;
  so.metrics_port = 0;  // ephemeral
  so.stats_interval_ms = 5;
  serve::GarblerService service({spec}, so);
  service.start();
  ASSERT_NE(service.metrics_port(), 0);

  // The endpoint is live before/between runs, not just after a summary.
  const std::string idle = http_get(service.metrics_port(), "/metrics");
  EXPECT_EQ(idle.find("HTTP/1.1 200 OK\r\n"), 0u) << idle;
  EXPECT_NE(idle.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  serve::ClientOptions co;
  co.program = "adder8";
  co.fixed_cycles = 1;
  const serve::ClientResult res = serve::run_client(
      "127.0.0.1", service.port(), nl, co, to_bits(200, 8));
  EXPECT_EQ(res.outputs, to_bits(277 & 0xff, 8));

  const std::string page = http_get(service.metrics_port(), "/metrics");
  EXPECT_EQ(page.find("HTTP/1.1 200 OK\r\n"), 0u) << page;
#if ARM2GC_OBS
  EXPECT_NE(page.find("arm2gc_serve_runs_ok 1\n"), std::string::npos) << page;
  EXPECT_NE(page.find("arm2gc_serve_accepted 1\n"), std::string::npos);
  // Phase dwell histograms observed the run.
  EXPECT_NE(page.find("arm2gc_serve_phase_work_ns_count"), std::string::npos);
#else
  EXPECT_NE(page.find("compiled out"), std::string::npos) << page;
#endif

  EXPECT_EQ(http_get(service.metrics_port(), "/nope")
                .find("HTTP/1.1 404 Not Found\r\n"),
            0u);
  EXPECT_EQ(http_request(service.metrics_port(),
                         "POST /metrics HTTP/1.1\r\nHost: x\r\n"
                         "Connection: close\r\n\r\n")
                .find("HTTP/1.1 405 Method Not Allowed\r\n"),
            0u);

  service.stop();
}

}  // namespace
