// Internal seam between aes128.cpp (backend dispatch) and aesni.cpp (the only
// translation unit built with -maes). Keeping the intrinsics behind a plain
// function pointer boundary lets the rest of the library build for any target.
// Not part of the public API; include only from src/crypto.
#pragma once

#include <cstddef>
#include <cstdint>

#include "crypto/block.h"

namespace arm2gc::crypto::detail {

/// False when the library was built without the AES-NI translation unit
/// (non-x86 targets), regardless of what the CPU reports.
bool aesni_compiled_in();

/// Encrypts `n` blocks in place with AES-NI. `round_key_bytes` holds the 11
/// round keys in FIPS byte order, 16 bytes each. Must only be called when
/// Aes128::aesni_available() is true.
void aesni_encrypt_batch(const std::uint8_t* round_key_bytes, Block* io, std::size_t n);

}  // namespace arm2gc::crypto::detail
