#include "core/plan.h"

#include "core/workpool.h"
namespace fix::core {
CyclePlan classify(crypto::Block seed) {
  CyclePlan p;
  WorkPool pool(1);
  p.emitted = static_cast<unsigned>(seed.lo & 3u) + (pool.threads() - 1);
  return p;
}
}  // namespace fix::core
