#include "core/skipgate.h"

#include <exception>
#include <stdexcept>
#include <thread>

namespace arm2gc::core {

namespace {

using netlist::BitVec;
using netlist::Netlist;

/// Lock-step schedule: both endpoints interleaved on one thread over the
/// non-blocking in-memory duplex, in exactly the cross-party order the
/// endpoint contract specifies (core/party.h). The evaluator runs in
/// plan-following mode — one address space is one trust domain, and both
/// parties' planners provably derive identical plans (plan_test), so
/// planning once is pure wall-clock savings with identical results; the
/// driver reports the garbler's counters (which match a two-process run)
/// plus the evaluator's OT wall time (the lock-step run spends both
/// parties' time on one thread).
RunResult run_lockstep(const Netlist& nl, const RunOptions& opts, const BitVec& alice_bits,
                       const BitVec& bob_bits, const BitVec& pub_bits,
                       const StreamProvider* streams) {
  gc::InMemoryDuplex duplex;
  GarblerEndpoint garbler(nl, party_options(Role::Garbler, opts), duplex.garbler_end(),
                          opts.exec.garbler_warm);
  EvaluatorEndpoint evaluator(nl, party_options(Role::Evaluator, opts), duplex.evaluator_end(),
                              opts.exec.evaluator_warm, garbler);
  try {
    evaluator.start_request(bob_bits, pub_bits, streams);
    garbler.start(alice_bits, pub_bits, streams);
    evaluator.start_finish();
    for (std::uint64_t cycle = 0;; ++cycle) {
      evaluator.begin_request(cycle);
      garbler.begin(cycle);
      evaluator.begin_finish();
      const bool final_g = garbler.work(cycle);
      const bool final_e = evaluator.work(cycle);
      evaluator.sample();
      garbler.sample();
      if (final_g != final_e) {
        // Unreachable with intact planners: termination is a deterministic
        // public decision both sides compute identically.
        throw std::logic_error("skipgate: endpoints disagree on the final cycle");
      }
      if (final_g) break;
      garbler.latch();
      evaluator.latch();
      // OT maintenance slot (receiver-first, like the binding phases): lets
      // the Precomp backend top up its random-OT pool between cycles. No-ops
      // under Ideal/Iknp, but the slot stays in the schedule unconditionally
      // so every backend sees the same cross-party ordering.
      evaluator.ot_refill_request();
      garbler.ot_refill();
      evaluator.ot_refill_finish();
    }
  } catch (...) {
    garbler.abort();
    evaluator.abort();
    throw;
  }
  RunResult result = garbler.finish();
  const RunStats eval_stats = evaluator.finish().stats;
  result.stats.ot_wall_ns += eval_stats.ot_wall_ns;
  result.stats.ot_offline_wall_ns += eval_stats.ot_offline_wall_ns;
  result.stats.comm = duplex.stats();
  result.stats.transport_high_water_blocks = duplex.high_water_blocks();
  return result;
}

/// True iff the exception is the transport's shutdown signal (raised on a
/// peer that was unblocked by close()), which only ever masks the real error.
bool is_transport_closed(const std::exception_ptr& p) {
  try {
    std::rethrow_exception(p);
  } catch (const gc::TransportClosed&) {
    return true;
  } catch (...) {
    return false;
  }
}

RunResult run_threaded(const Netlist& nl, const RunOptions& opts, const BitVec& alice_bits,
                       const BitVec& bob_bits, const BitVec& pub_bits,
                       const StreamProvider* streams) {
  gc::ThreadedPipeDuplex duplex(opts.exec.pipe_blocks);
  RunResult result;
  std::exception_ptr garbler_error;
  std::exception_ptr evaluator_error;

  // Garbler endpoint on a worker thread: exactly the code path a remote
  // garbler service runs, just over the pipe instead of a socket. It runs
  // ahead of the evaluator until the pipe's backpressure stalls it; output
  // decoding is the only point where it waits for the evaluator.
  std::thread garbler_thread([&] {
    try {
      GarblerEndpoint garbler(nl, party_options(Role::Garbler, opts), duplex.garbler_end(),
                              opts.exec.garbler_warm);
      result = garbler.run(alice_bits, pub_bits, streams);
    } catch (...) {
      garbler_error = std::current_exception();
      duplex.close();
    }
  });

  // Evaluator endpoint on the calling thread, with its own planner making
  // the same deterministic decisions.
  try {
    EvaluatorEndpoint evaluator(nl, party_options(Role::Evaluator, opts),
                                duplex.evaluator_end(), opts.exec.evaluator_warm);
    (void)evaluator.run(bob_bits, pub_bits, streams);
  } catch (...) {
    evaluator_error = std::current_exception();
    duplex.close();
  }
  garbler_thread.join();

  if (garbler_error || evaluator_error) {
    // Both parties compute termination errors deterministically; a
    // "transport: closed" error is only ever the echo of the peer's failure.
    if (garbler_error && evaluator_error) {
      std::rethrow_exception(is_transport_closed(garbler_error) &&
                                     !is_transport_closed(evaluator_error)
                                 ? evaluator_error
                                 : garbler_error);
    }
    std::rethrow_exception(garbler_error ? garbler_error : evaluator_error);
  }

  result.stats.comm = duplex.stats();
  result.stats.transport_high_water_blocks = duplex.high_water_blocks();
  return result;
}

}  // namespace

PartyOptions party_options(Role role, const RunOptions& opts) {
  (void)role;  // the expansion is role-symmetric; the role picks the endpoint
  PartyOptions p;
  p.mode = opts.mode;
  p.scheme = opts.scheme;
  p.fixed_cycles = opts.fixed_cycles;
  p.halt_wire = opts.halt_wire;
  p.max_cycles = opts.max_cycles;
  p.protocol_seed = opts.seed;
  p.private_seed = opts.seed;  // in-process determinism convention
  p.plan_cache = opts.exec.plan_cache;
  p.plan_cache_budget_bytes = opts.exec.plan_cache_budget_bytes;
  p.cone_memo = opts.exec.cone_memo;
  p.cone_memo_budget_bytes = opts.exec.cone_memo_budget_bytes;
  p.cone_target_gates = opts.exec.cone_target_gates;
  p.ot_backend = opts.exec.ot_backend;
  p.ot_pool = opts.exec.ot_pool;
  p.threads = opts.exec.threads;
  return p;
}

SkipGateDriver::SkipGateDriver(const Netlist& nl, RunOptions opts) : nl_(nl), opts_(opts) {}

RunResult SkipGateDriver::run(const BitVec& alice_bits, const BitVec& bob_bits,
                              const BitVec& pub_bits, const StreamProvider* streams) {
  // Role-scoped WarmState makes cross-party sharing and role mixups
  // construction errors; surface them before any thread or transport is set
  // up (the endpoints re-check, but a worker thread's error would race the
  // peer's).
  if (opts_.exec.garbler_warm != nullptr &&
      opts_.exec.garbler_warm == opts_.exec.evaluator_warm) {
    throw std::invalid_argument("skipgate: one WarmState handed to both parties");
  }
  if (opts_.exec.garbler_warm != nullptr &&
      opts_.exec.garbler_warm->role() != Role::Garbler) {
    throw std::invalid_argument("skipgate: garbler slot holds an evaluator-role WarmState");
  }
  if (opts_.exec.evaluator_warm != nullptr &&
      opts_.exec.evaluator_warm->role() != Role::Evaluator) {
    throw std::invalid_argument("skipgate: evaluator slot holds a garbler-role WarmState");
  }
  if (opts_.exec.transport == TransportKind::ThreadedPipe) {
    return run_threaded(nl_, opts_, alice_bits, bob_bits, pub_bits, streams);
  }
  return run_lockstep(nl_, opts_, alice_bits, bob_bits, pub_bits, streams);
}

}  // namespace arm2gc::core
