// Fixture: evaluator TU; owns lb_ and must never name garbler secrets —
// including the precomputed random-OT pad pool, which holds both pads of
// every banked OT.
#include "core/plan.h"
#include "gc/transport.h"
namespace fix::core {
class EvaluatorSession {
 public:
  void run();
 private:
  gc::Transport* tx_ = nullptr;
  crypto::Block lb_[2];
  class RandomOtPoolSender* pads_ = nullptr;  // VIOLATION: garbler-only pool
};
void EvaluatorSession::run() { (void)tx_; }
}  // namespace fix::core
