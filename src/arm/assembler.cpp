#include "arm/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

namespace arm2gc::arm {

std::optional<std::uint16_t> encode_imm12(std::uint32_t value) {
  for (std::uint32_t rot = 0; rot < 16; ++rot) {
    const unsigned r = 2 * rot;
    const std::uint32_t candidate = r == 0 ? value : ((value << r) | (value >> (32 - r)));
    if (candidate <= 0xffu) {
      return static_cast<std::uint16_t>((rot << 8) | candidate);
    }
  }
  return std::nullopt;
}

const char* cond_name(Cond c) {
  static const char* kNames[16] = {"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
                                   "hi", "ls", "ge", "lt", "gt", "le", "", "nv"};
  return kNames[static_cast<int>(c)];
}

namespace {

struct Line {
  std::size_t number = 0;
  std::string text;
};

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Statement kinds after pass-1 classification.
enum class StKind : std::uint8_t { Instr, Word, LoadLiteral };

struct Statement {
  StKind kind = StKind::Instr;
  std::size_t line = 0;
  std::uint32_t address = 0;
  std::string text;          // instruction text (mnemonic + operands)
  std::string expr;          // .word / =literal expression
  int lit_reg = -1;          // destination register for LoadLiteral
  Cond lit_cond = Cond::Al;  // condition for LoadLiteral
  std::uint32_t lit_addr = 0;  // resolved literal slot address
};

struct Operand2 {
  bool is_imm = false;
  std::uint16_t imm12 = 0;
  int rm = 0;
  ShiftType shift = ShiftType::Lsl;
  bool shift_by_reg = false;
  int rs = 0;
  std::uint32_t shift_imm = 0;
};

class Assembler {
 public:
  std::vector<std::uint32_t> run(const std::string& source) {
    split_lines(source);
    pass1();
    return pass2();
  }

 private:
  [[noreturn]] void fail(std::size_t line, const std::string& msg) const {
    throw AssemblyError(line, msg);
  }

  void split_lines(const std::string& source) {
    std::istringstream is(source);
    std::string raw;
    std::size_t n = 0;
    while (std::getline(is, raw)) {
      ++n;
      for (const char* marker : {";", "@", "//"}) {
        const std::size_t pos = raw.find(marker);
        if (pos != std::string::npos) raw = raw.substr(0, pos);
      }
      raw = strip(raw);
      if (!raw.empty()) lines_.push_back(Line{n, raw});
    }
  }

  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
  }

  void pass1() {
    std::uint32_t addr = 0;
    std::vector<std::size_t> pending_literals;  // indices into statements_

    auto flush_pool = [&]() {
      for (const std::size_t idx : pending_literals) {
        statements_[idx].lit_addr = addr;
        addr += 4;
      }
      pending_literals.clear();
    };

    for (const Line& line : lines_) {
      std::string text = line.text;
      // Labels (possibly several on one line).
      while (true) {
        const std::size_t colon = text.find(':');
        if (colon == std::string::npos) break;
        const std::string label = strip(text.substr(0, colon));
        if (label.empty() || !std::all_of(label.begin(), label.end(), is_ident_char)) break;
        if (labels_.count(label) != 0) fail(line.number, "duplicate label '" + label + "'");
        labels_[label] = addr;
        text = strip(text.substr(colon + 1));
      }
      if (text.empty()) continue;

      const std::string lowered = lower(text);
      if (lowered.rfind(".word", 0) == 0) {
        statements_.push_back(
            Statement{StKind::Word, line.number, addr, "", strip(text.substr(5)), -1, Cond::Al, 0});
        addr += 4;
      } else if (lowered.rfind(".ltorg", 0) == 0) {
        flush_pool();
      } else if (lowered.rfind("ldr", 0) == 0 && text.find('=') != std::string::npos) {
        // ldr{cond} rd, =expr  -> pc-relative load from the literal pool.
        Statement st;
        st.kind = StKind::LoadLiteral;
        st.line = line.number;
        st.address = addr;
        std::string rest = lowered.substr(3);
        st.lit_cond = take_cond(rest);
        if (!rest.empty() && rest[0] != ' ' && rest[0] != '\t') {
          fail(line.number, "bad ldr mnemonic");
        }
        const std::size_t comma = text.find(',');
        if (comma == std::string::npos) fail(line.number, "ldr =: missing comma");
        const std::size_t mnemonic_end = text.find_first_of(" \t");
        st.lit_reg = parse_reg(strip(text.substr(mnemonic_end, comma - mnemonic_end)), line.number);
        const std::string after = strip(text.substr(comma + 1));
        if (after.empty() || after[0] != '=') fail(line.number, "ldr =: missing '='");
        st.expr = strip(after.substr(1));
        statements_.push_back(st);
        pending_literals.push_back(statements_.size() - 1);
        addr += 4;
      } else {
        statements_.push_back(
            Statement{StKind::Instr, line.number, addr, text, "", -1, Cond::Al, 0});
        addr += 4;
      }
    }
    flush_pool();
    total_words_ = addr / 4;
  }

  std::vector<std::uint32_t> pass2() {
    std::vector<std::uint32_t> words(total_words_, 0);
    for (const Statement& st : statements_) {
      switch (st.kind) {
        case StKind::Word:
          words[st.address / 4] = eval_expr(st.expr, st.line);
          break;
        case StKind::LoadLiteral: {
          words[st.lit_addr / 4] = eval_expr(st.expr, st.line);
          const std::int64_t off =
              static_cast<std::int64_t>(st.lit_addr) - (static_cast<std::int64_t>(st.address) + 8);
          const bool up = off >= 0;
          const std::uint32_t mag = static_cast<std::uint32_t>(up ? off : -off);
          if (mag > 0xfff) fail(st.line, "literal pool out of range");
          words[st.address / 4] = (static_cast<std::uint32_t>(st.lit_cond) << 28) |
                                  (0b01u << 26) | (1u << 24) | (up ? 1u << 23 : 0) | (1u << 20) |
                                  (15u << 16) | (static_cast<std::uint32_t>(st.lit_reg) << 12) |
                                  mag;
          break;
        }
        case StKind::Instr:
          words[st.address / 4] = encode_instr(st);
          break;
      }
    }
    return words;
  }

  // --- operand parsing -------------------------------------------------------

  int parse_reg(const std::string& token, std::size_t line) const {
    const std::string t = lower(strip(token));
    if (t == "sp") return 13;
    if (t == "lr") return 14;
    if (t == "pc") return 15;
    if (t == "fp") return 11;
    if (t == "ip") return 12;
    if (t.size() >= 2 && t[0] == 'r') {
      const std::string num = t.substr(1);
      if (std::all_of(num.begin(), num.end(), ::isdigit)) {
        const int r = std::stoi(num);
        if (r >= 0 && r <= 15) return r;
      }
    }
    fail(line, "bad register '" + token + "'");
  }

  std::uint32_t eval_expr(const std::string& expr, std::size_t line) const {
    const std::string e = strip(expr);
    if (e.empty()) fail(line, "empty expression");
    if (auto it = labels_.find(e); it != labels_.end()) return it->second;
    return parse_number(e, line);
  }

  std::uint32_t parse_number(const std::string& token, std::size_t line) const {
    const std::string t = strip(token);
    try {
      const bool neg = !t.empty() && t[0] == '-';
      const std::string mag = neg ? t.substr(1) : t;
      const unsigned long long v = std::stoull(mag, nullptr, 0);
      const auto u = static_cast<std::uint32_t>(v);
      return neg ? static_cast<std::uint32_t>(-static_cast<std::int64_t>(u)) : u;
    } catch (const std::exception&) {
      fail(line, "bad number '" + token + "'");
    }
  }

  static Cond take_cond(std::string& rest) {
    static const std::pair<const char*, Cond> kConds[] = {
        {"eq", Cond::Eq}, {"ne", Cond::Ne}, {"cs", Cond::Cs}, {"hs", Cond::Cs},
        {"cc", Cond::Cc}, {"lo", Cond::Cc}, {"mi", Cond::Mi}, {"pl", Cond::Pl},
        {"vs", Cond::Vs}, {"vc", Cond::Vc}, {"hi", Cond::Hi}, {"ls", Cond::Ls},
        {"ge", Cond::Ge}, {"lt", Cond::Lt}, {"gt", Cond::Gt}, {"le", Cond::Le},
        {"al", Cond::Al}};
    for (const auto& [name, cond] : kConds) {
      if (rest.rfind(name, 0) == 0) {
        rest = rest.substr(2);
        return cond;
      }
    }
    return Cond::Al;
  }

  std::vector<std::string> split_operands(const std::string& s, std::size_t line) const {
    // Split on commas not inside brackets.
    std::vector<std::string> out;
    int depth = 0;
    std::string cur;
    for (const char c : s) {
      if (c == '[') ++depth;
      if (c == ']') --depth;
      if (c == ',' && depth == 0) {
        out.push_back(strip(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!strip(cur).empty()) out.push_back(strip(cur));
    if (depth != 0) fail(line, "unbalanced brackets");
    return out;
  }

  Operand2 parse_op2(const std::vector<std::string>& ops, std::size_t start,
                     std::size_t line) const {
    Operand2 o;
    const std::string& first = ops[start];
    if (first[0] == '#') {
      const std::uint32_t v = parse_number(first.substr(1), line);
      const auto enc = encode_imm12(v);
      if (!enc) fail(line, "immediate not encodable: " + first + " (use ldr rd, =imm)");
      o.is_imm = true;
      o.imm12 = *enc;
      if (ops.size() > start + 1) fail(line, "unexpected operand after immediate");
      return o;
    }
    o.rm = parse_reg(first, line);
    if (ops.size() == start + 1) return o;
    // "rm, lsl #n" or "rm, lsl rs"
    const std::string shift_spec = lower(ops[start + 1]);
    static const std::pair<const char*, ShiftType> kShifts[] = {
        {"lsl", ShiftType::Lsl}, {"lsr", ShiftType::Lsr}, {"asr", ShiftType::Asr},
        {"ror", ShiftType::Ror}};
    bool found = false;
    for (const auto& [name, type] : kShifts) {
      if (shift_spec.rfind(name, 0) == 0) {
        o.shift = type;
        found = true;
        break;
      }
    }
    if (!found) fail(line, "bad shift '" + ops[start + 1] + "'");
    const std::string amount = strip(shift_spec.substr(3));
    if (amount.empty()) fail(line, "missing shift amount");
    if (amount[0] == '#') {
      o.shift_imm = parse_number(amount.substr(1), line);
      if (o.shift_imm > 31) fail(line, "shift amount out of range");
    } else {
      o.shift_by_reg = true;
      o.rs = parse_reg(amount, line);
    }
    if (ops.size() > start + 2) fail(line, "unexpected operand after shift");
    return o;
  }

  static std::uint32_t op2_bits(const Operand2& o) {
    if (o.is_imm) return (1u << 25) | o.imm12;
    if (o.shift_by_reg) {
      return (static_cast<std::uint32_t>(o.rs) << 8) |
             (static_cast<std::uint32_t>(o.shift) << 5) | (1u << 4) |
             static_cast<std::uint32_t>(o.rm);
    }
    return (o.shift_imm << 7) | (static_cast<std::uint32_t>(o.shift) << 5) |
           static_cast<std::uint32_t>(o.rm);
  }

  // --- instruction encoding ----------------------------------------------------

  std::uint32_t encode_instr(const Statement& st) {
    const std::size_t sp = st.text.find_first_of(" \t");
    std::string mnemonic = lower(sp == std::string::npos ? st.text : st.text.substr(0, sp));
    const std::string operand_text = sp == std::string::npos ? "" : strip(st.text.substr(sp));
    const std::vector<std::string> ops = split_operands(operand_text, st.line);

    static const std::pair<const char*, DpOp> kDpOps[] = {
        {"and", DpOp::And}, {"eor", DpOp::Eor}, {"sub", DpOp::Sub}, {"rsb", DpOp::Rsb},
        {"add", DpOp::Add}, {"adc", DpOp::Adc}, {"sbc", DpOp::Sbc}, {"rsc", DpOp::Rsc},
        {"tst", DpOp::Tst}, {"teq", DpOp::Teq}, {"cmp", DpOp::Cmp}, {"cmn", DpOp::Cmn},
        {"orr", DpOp::Orr}, {"mov", DpOp::Mov}, {"bic", DpOp::Bic}, {"mvn", DpOp::Mvn}};

    // Multi-character bases first so "bl"/"bls" parse unambiguously.
    if (mnemonic.rfind("mla", 0) == 0) return encode_mul(mnemonic.substr(3), ops, st.line, true);
    if (mnemonic.rfind("mul", 0) == 0) return encode_mul(mnemonic.substr(3), ops, st.line, false);
    if (mnemonic.rfind("ldr", 0) == 0) return encode_mem(mnemonic.substr(3), ops, st.line, true);
    if (mnemonic.rfind("str", 0) == 0) return encode_mem(mnemonic.substr(3), ops, st.line, false);
    if (mnemonic.rfind("swi", 0) == 0) {
      std::string rest = mnemonic.substr(3);
      const Cond cond = take_cond(rest);
      if (!rest.empty()) fail(st.line, "bad swi mnemonic");
      const std::uint32_t imm = ops.empty() ? 0 : parse_number(ops[0][0] == '#' ? ops[0].substr(1) : ops[0], st.line);
      return (static_cast<std::uint32_t>(cond) << 28) | (0b1111u << 24) | (imm & 0xffffffu);
    }
    for (const auto& [name, op] : kDpOps) {
      if (mnemonic.rfind(name, 0) == 0) {
        return encode_dp(op, mnemonic.substr(3), ops, st.line);
      }
    }
    if (mnemonic.rfind("bl", 0) == 0 || mnemonic[0] == 'b') {
      const bool link = mnemonic.rfind("bl", 0) == 0 &&
                        (mnemonic.size() == 2 || mnemonic.size() == 4);
      std::string rest = mnemonic.substr(link ? 2 : 1);
      const Cond cond = take_cond(rest);
      if (!rest.empty()) fail(st.line, "bad branch mnemonic '" + mnemonic + "'");
      if (ops.size() != 1) fail(st.line, "branch needs a target");
      const std::uint32_t target = eval_expr(ops[0], st.line);
      const std::int64_t off =
          (static_cast<std::int64_t>(target) - (static_cast<std::int64_t>(st.address) + 8)) >> 2;
      return (static_cast<std::uint32_t>(cond) << 28) | (0b101u << 25) |
             (link ? 1u << 24 : 0) | (static_cast<std::uint32_t>(off) & 0xffffffu);
    }
    fail(st.line, "unknown mnemonic '" + mnemonic + "'");
  }

  std::uint32_t encode_dp(DpOp op, std::string suffix, const std::vector<std::string>& ops,
                          std::size_t line) {
    const Cond cond = take_cond(suffix);
    bool s = false;
    if (suffix == "s") {
      s = true;
      suffix.clear();
    }
    if (!suffix.empty()) fail(line, "bad mnemonic suffix '" + suffix + "'");
    if (dp_no_writeback(op)) s = true;  // tst/teq/cmp/cmn always set flags

    int rd = 0;
    int rn = 0;
    std::size_t op2_start = 0;
    if (op == DpOp::Mov || op == DpOp::Mvn) {
      if (ops.size() < 2) fail(line, "mov/mvn needs 2 operands");
      rd = parse_reg(ops[0], line);
      op2_start = 1;
    } else if (dp_no_writeback(op)) {
      if (ops.size() < 2) fail(line, "compare needs 2 operands");
      rn = parse_reg(ops[0], line);
      op2_start = 1;
    } else {
      if (ops.size() < 3) fail(line, "needs 3 operands");
      rd = parse_reg(ops[0], line);
      rn = parse_reg(ops[1], line);
      op2_start = 2;
    }
    if (rd == 15 || rn == 15) fail(line, "r15 not allowed as rd/rn (use b/bl)");
    const Operand2 o2 = parse_op2(ops, op2_start, line);
    return (static_cast<std::uint32_t>(cond) << 28) | (static_cast<std::uint32_t>(op) << 21) |
           (s ? 1u << 20 : 0) | (static_cast<std::uint32_t>(rn) << 16) |
           (static_cast<std::uint32_t>(rd) << 12) | op2_bits(o2);
  }

  std::uint32_t encode_mul(std::string suffix, const std::vector<std::string>& ops,
                           std::size_t line, bool mla) {
    const Cond cond = take_cond(suffix);
    bool s = false;
    if (suffix == "s") {
      s = true;
      suffix.clear();
    }
    if (!suffix.empty()) fail(line, "bad mul suffix");
    if (ops.size() != (mla ? 4u : 3u)) fail(line, mla ? "mla rd, rm, rs, rn" : "mul rd, rm, rs");
    const int rd = parse_reg(ops[0], line);
    const int rm = parse_reg(ops[1], line);
    const int rs = parse_reg(ops[2], line);
    const int rn = mla ? parse_reg(ops[3], line) : 0;
    if (rd == 15 || rm == 15 || rs == 15 || rn == 15) fail(line, "r15 not allowed in mul");
    return (static_cast<std::uint32_t>(cond) << 28) | (mla ? 1u << 21 : 0) |
           (s ? 1u << 20 : 0) | (static_cast<std::uint32_t>(rd) << 16) |
           (static_cast<std::uint32_t>(rn) << 12) | (static_cast<std::uint32_t>(rs) << 8) |
           (0b1001u << 4) | static_cast<std::uint32_t>(rm);
  }

  std::uint32_t encode_mem(std::string suffix, const std::vector<std::string>& ops,
                           std::size_t line, bool load) {
    const Cond cond = take_cond(suffix);
    if (!suffix.empty()) fail(line, "bad ldr/str suffix (byte/half access unsupported)");
    if (ops.size() != 2) fail(line, "ldr/str rd, [rn{, #off}]");
    const int rd = parse_reg(ops[0], line);
    std::string mem = strip(ops[1]);
    if (mem.size() < 2 || mem.front() != '[' || mem.back() != ']') {
      fail(line, "bad address operand '" + ops[1] + "'");
    }
    mem = mem.substr(1, mem.size() - 2);
    const std::vector<std::string> parts = split_operands(mem, line);
    const int rn = parse_reg(parts[0], line);
    bool up = true;
    std::uint32_t off = 0;
    if (parts.size() == 2) {
      if (parts[1].empty() || parts[1][0] != '#') fail(line, "register offsets unsupported");
      std::int64_t v = static_cast<std::int32_t>(parse_number(parts[1].substr(1), line));
      if (v < 0) {
        up = false;
        v = -v;
      }
      if (v > 0xfff) fail(line, "offset out of range");
      off = static_cast<std::uint32_t>(v);
    } else if (parts.size() > 2) {
      fail(line, "bad address operand");
    }
    return (static_cast<std::uint32_t>(cond) << 28) | (0b01u << 26) | (1u << 24) |
           (up ? 1u << 23 : 0) | (load ? 1u << 20 : 0) | (static_cast<std::uint32_t>(rn) << 16) |
           (static_cast<std::uint32_t>(rd) << 12) | off;
  }

  std::vector<Line> lines_;
  std::vector<Statement> statements_;
  std::map<std::string, std::uint32_t> labels_;
  std::uint32_t total_words_ = 0;
};

}  // namespace

std::vector<std::uint32_t> assemble(const std::string& source) {
  return Assembler{}.run(source);
}

std::string disassemble(std::uint32_t instr) {
  static const char* kDpNames[16] = {"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
                                     "tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn"};
  std::ostringstream os;
  const auto cond = static_cast<Cond>(bits(instr, 31, 28));
  const DecodedClass cls = classify(instr);
  if (cls.is_swi) {
    os << "swi" << cond_name(cond) << " " << bits(instr, 23, 0);
  } else if (cls.is_branch) {
    const auto off = static_cast<std::int32_t>(bits(instr, 23, 0) << 8) >> 8;
    os << (bits(instr, 24, 24) ? "bl" : "b") << cond_name(cond) << " pc+8+" << (off * 4);
  } else if (cls.is_mul) {
    os << (bits(instr, 21, 21) ? "mla" : "mul") << cond_name(cond) << " r" << bits(instr, 19, 16)
       << ", r" << bits(instr, 3, 0) << ", r" << bits(instr, 11, 8);
    if (bits(instr, 21, 21)) os << ", r" << bits(instr, 15, 12);
  } else if (cls.is_mem) {
    os << (bits(instr, 20, 20) ? "ldr" : "str") << cond_name(cond) << " r" << bits(instr, 15, 12)
       << ", [r" << bits(instr, 19, 16) << ", #" << (bits(instr, 23, 23) ? "" : "-")
       << bits(instr, 11, 0) << "]";
  } else if (cls.is_dp) {
    const auto op = static_cast<DpOp>(bits(instr, 24, 21));
    os << kDpNames[static_cast<int>(op)] << cond_name(cond)
       << (bits(instr, 20, 20) && !dp_no_writeback(op) ? "s" : "");
    if (op == DpOp::Mov || op == DpOp::Mvn) {
      os << " r" << bits(instr, 15, 12);
    } else if (dp_no_writeback(op)) {
      os << " r" << bits(instr, 19, 16);
    } else {
      os << " r" << bits(instr, 15, 12) << ", r" << bits(instr, 19, 16);
    }
    if (bits(instr, 25, 25)) {
      const std::uint32_t rot = 2 * bits(instr, 11, 8);
      const std::uint32_t imm = bits(instr, 7, 0);
      os << ", #" << ((imm >> rot) | (rot ? imm << (32 - rot) : 0));
    } else {
      os << ", r" << bits(instr, 3, 0);
      static const char* kShiftNames[4] = {"lsl", "lsr", "asr", "ror"};
      if (bits(instr, 4, 4)) {
        os << ", " << kShiftNames[bits(instr, 6, 5)] << " r" << bits(instr, 11, 8);
      } else if (bits(instr, 11, 7) != 0) {
        os << ", " << kShiftNames[bits(instr, 6, 5)] << " #" << bits(instr, 11, 7);
      }
    }
  } else {
    os << ".word 0x" << std::hex << instr;
  }
  return os.str();
}

}  // namespace arm2gc::arm
