#include "crypto/prf.h"

namespace arm2gc::crypto {

namespace {
// Fixed public permutation key; any constant works (it is public by design).
constexpr Block kFixedKey{0x1032547698badcfeULL, 0xefcdab8967452301ULL};
}  // namespace

PiHash::PiHash() : pi_(kFixedKey) {}

PiHash::PiHash(Aes128::Backend backend) : pi_(kFixedKey, backend) {}

Block PiHash::operator()(Block label, std::uint64_t tweak) const {
  const Block k = label.gf_double() ^ block_from_u64(tweak);
  return pi_.encrypt(k) ^ k;
}

void PiHash::hash2(const Block in[2], const std::uint64_t tweak[2], Block out[2]) const {
  Block k[2];
  Block c[2];
  for (int i = 0; i < 2; ++i) c[i] = k[i] = in[i].gf_double() ^ block_from_u64(tweak[i]);
  pi_.encrypt_batch(c, 2);
  for (int i = 0; i < 2; ++i) out[i] = c[i] ^ k[i];
}

void PiHash::hash4(const Block in[4], const std::uint64_t tweak[4], Block out[4]) const {
  Block k[4];
  Block c[4];
  for (int i = 0; i < 4; ++i) c[i] = k[i] = in[i].gf_double() ^ block_from_u64(tweak[i]);
  pi_.encrypt_batch(c, 4);
  for (int i = 0; i < 4; ++i) out[i] = c[i] ^ k[i];
}

}  // namespace arm2gc::crypto
