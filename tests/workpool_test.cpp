// WorkPool unit tests: DAG-ordered execution, the ordered feed/drain I/O
// contract (ascending feed, ascending-completion drain, both on the calling
// thread), exception propagation with cancellation, serial/pooled schedule
// equivalence, and a contention stress run. These are the properties the
// parallel garbling/evaluation sessions and the planner's parallel
// classification are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/workpool.h"

namespace {

using arm2gc::core::WorkPool;

/// Builds the dependency CSR from an adjacency list (deps[i] = tasks i
/// depends on; every edge must point at an earlier task, as in a CyclePlan).
struct DepGraph {
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> edges;

  explicit DepGraph(const std::vector<std::vector<std::uint32_t>>& deps) {
    offsets.push_back(0);
    for (const auto& d : deps) {
      edges.insert(edges.end(), d.begin(), d.end());
      offsets.push_back(static_cast<std::uint32_t>(edges.size()));
    }
  }
};

TEST(WorkPool, ResolveThreads) {
  EXPECT_EQ(WorkPool::resolve_threads(1), 1u);
  EXPECT_EQ(WorkPool::resolve_threads(7), 7u);
  EXPECT_GE(WorkPool::resolve_threads(0), 1u);  // 0 = hardware concurrency
}

TEST(WorkPool, RunSerialIsAscendingFeedFnDrain) {
  std::vector<int> trace;
  WorkPool::run_serial(
      3, [&](std::size_t i) { trace.push_back(static_cast<int>(10 + i)); },
      [&](std::size_t i) { trace.push_back(static_cast<int>(i)); },
      [&](std::size_t i) { trace.push_back(static_cast<int>(20 + i)); });
  EXPECT_EQ(trace, (std::vector<int>{0, 10, 20, 1, 11, 21, 2, 12, 22}));
}

TEST(WorkPool, ExecutesEveryTaskExactlyOnce) {
  WorkPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, nullptr, nullptr, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkPool, RespectsDependencyOrder) {
  // A diamond ladder: every task depends on the previous two, so any
  // execution order the pool picks must still see both deps completed.
  constexpr std::size_t kTasks = 400;
  std::vector<std::vector<std::uint32_t>> deps(kTasks);
  for (std::uint32_t i = 1; i < kTasks; ++i) {
    deps[i].push_back(i - 1);
    if (i >= 2) deps[i].push_back(i - 2);
  }
  const DepGraph g(deps);
  WorkPool pool(4);
  std::vector<std::atomic<std::uint8_t>> done(kTasks);
  std::atomic<bool> violated{false};
  pool.run(kTasks, g.offsets.data(), g.edges.data(), [&](std::size_t i) {
    if (i >= 1 && !done[i - 1].load()) violated = true;
    if (i >= 2 && !done[i - 2].load()) violated = true;
    done[i].store(1);
  });
  EXPECT_FALSE(violated.load());
}

TEST(WorkPool, FeedGatesTasksAndDrainRunsInAscendingOrderOnCaller) {
  constexpr std::size_t kTasks = 200;
  WorkPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<std::uint8_t>> fed(kTasks);
  std::vector<std::size_t> fed_order;
  std::vector<std::size_t> drained_order;
  std::atomic<bool> ran_unfed{false};
  pool.run(
      kTasks, nullptr, nullptr,
      [&](std::size_t i) {
        if (!fed[i].load()) ran_unfed = true;  // feed is a dependency
      },
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        fed[i].store(1);
        fed_order.push_back(i);
      },
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        drained_order.push_back(i);
      });
  EXPECT_FALSE(ran_unfed.load());
  ASSERT_EQ(fed_order.size(), kTasks);
  ASSERT_EQ(drained_order.size(), kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(fed_order[i], i);
    EXPECT_EQ(drained_order[i], i);  // ordered writer: ascending completion
  }
}

TEST(WorkPool, PooledMatchesSerialOnASlicePipeline) {
  // The session shape in miniature: each task transforms its input cell,
  // reading its dependencies' outputs; drain folds a running digest in task
  // order. Pooled and serial schedules must produce identical results.
  constexpr std::size_t kTasks = 300;
  std::vector<std::vector<std::uint32_t>> deps(kTasks);
  for (std::uint32_t i = 0; i < kTasks; ++i) {
    if (i >= 3) deps[i].push_back(i - 3);
    if (i >= 7) deps[i].push_back(i - 7);
  }
  const DepGraph g(deps);

  auto run_once = [&](WorkPool* pool) {
    std::vector<std::uint64_t> cell(kTasks, 0);
    std::uint64_t digest = 0;
    const auto fn = [&](std::size_t i) {
      std::uint64_t v = 0x9E3779B97F4A7C15ull * (i + 1);
      if (i >= 3) v ^= cell[i - 3];
      if (i >= 7) v ^= cell[i - 7] << 1;
      cell[i] = v;
    };
    const auto drain = [&](std::size_t i) { digest = digest * 31 + cell[i]; };
    WorkPool::execute(pool, kTasks, g.offsets.data(), g.edges.data(), fn, {}, drain);
    return digest;
  };

  const std::uint64_t serial = run_once(nullptr);
  WorkPool pool(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(run_once(&pool), serial) << "round " << round;
  }
}

TEST(WorkPool, WorkerExceptionCancelsAndRethrows) {
  WorkPool pool(3);
  constexpr std::size_t kTasks = 500;
  std::atomic<int> started{0};
  EXPECT_THROW(pool.run(kTasks, nullptr, nullptr,
                        [&](std::size_t i) {
                          started.fetch_add(1);
                          if (i == 10) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  // Cancellation keeps the tail from starting (in-flight tasks may finish).
  EXPECT_LT(started.load(), static_cast<int>(kTasks));
  // The pool must stay usable after a cancelled run.
  std::atomic<int> ok{0};
  pool.run(8, nullptr, nullptr, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(WorkPool, FeedAndDrainExceptionsPropagate) {
  WorkPool pool(2);
  EXPECT_THROW(pool.run(4, nullptr, nullptr, [](std::size_t) {},
                        [](std::size_t i) {
                          if (i == 2) throw std::logic_error("feed");
                        }),
               std::logic_error);
  EXPECT_THROW(pool.run(4, nullptr, nullptr, [](std::size_t) {}, {},
                        [](std::size_t i) {
                          if (i == 1) throw std::out_of_range("drain");
                        }),
               std::out_of_range);
}

TEST(WorkPool, RejectsForwardDependencyEdges) {
  WorkPool pool(2);
  const std::uint32_t offsets[] = {0, 1, 1};
  const std::uint32_t edges[] = {1};  // task 0 depends on the later task 1
  EXPECT_THROW(pool.run(2, offsets, edges, [](std::size_t) {}), std::invalid_argument);
}

TEST(WorkPool, StressManySmallRuns) {
  // Session-shaped load: many short runs (one per cycle) on a persistent
  // pool, alternating edgeless and chained DAGs. Exercises worker parking
  // and re-dispatch; run under TSan in CI.
  WorkPool pool(4);
  std::vector<std::vector<std::uint32_t>> deps(64);
  for (std::uint32_t i = 1; i < 64; ++i) deps[i].push_back(i - 1);
  const DepGraph chain(deps);
  std::uint64_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::uint64_t> sum{0};
    const auto fn = [&](std::size_t i) { sum.fetch_add(i + 1); };
    if (round % 2 == 0) {
      pool.run(64, nullptr, nullptr, fn);
    } else {
      pool.run(64, chain.offsets.data(), chain.edges.data(), fn);
    }
    total += sum.load();
  }
  EXPECT_EQ(total, 200ull * (64ull * 65ull / 2));
}

}  // namespace
